package runner

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"wazabee/internal/obs"
)

// Metric families published by the engine. Every series carries a "spec"
// label with the run's name, so concurrent runs on one registry stay
// distinguishable.
const (
	// TrialsMetric counts trial executions, including trials whose shard
	// was later discarded by the stopping rule or lost to cancellation.
	TrialsMetric = "wazabee_runner_trials_total"
	// ShardsMetric counts shard dispositions by state: completed (executed
	// to the end this run), restored (taken from a checkpoint), skipped
	// (never executed — the point stopped or the run ended first). At the
	// end of any run completed+restored+skipped equals the shard total.
	ShardsMetric = "wazabee_runner_shards_total"
	// DiscardedMetric counts completed or restored shards excluded from
	// the final tally because their point's stopping rule had already
	// frozen a shorter prefix.
	DiscardedMetric = "wazabee_runner_shards_discarded_total"
	// ProgressMetric is the counted-trials fraction (0..1) of the trials
	// still scheduled to run.
	ProgressMetric = "wazabee_runner_progress"
	// ETAMetric extrapolates the remaining wall-clock seconds from the
	// progress fraction and the elapsed time.
	ETAMetric = "wazabee_runner_eta_seconds"
	// WorkersMetric is the size of the run's worker pool.
	WorkersMetric = "wazabee_runner_workers"
)

// DefaultShardSize is the number of trials a shard bundles when the spec
// does not say otherwise: small enough that checkpoints and the stopping
// rule get frequent boundaries, large enough that scheduling overhead
// stays negligible against a multi-millisecond trial.
const DefaultShardSize = 16

// Point is one operating point of a Monte-Carlo experiment (a channel, an
// SNR, an emulator). Key must be unique within a spec: it seeds every one
// of the point's trials and names the point in checkpoints.
type Point struct {
	Key    string
	Trials int
}

// Outcome is the result of one trial: a classification (tallied into rate
// estimates with Wilson intervals) and an optional scalar (averaged into
// the point's Mean — pivotability scores, for instance).
type Outcome struct {
	Class string
	Value float64
}

// Trial executes one Monte-Carlo trial. All of the trial's randomness
// must derive from seed (already mixed from the run seed, the point key
// and the trial index via TrialSeed), and nothing else — that contract is
// what makes results independent of scheduling. The engine checks ctx
// between trials; long trials may additionally honour it themselves.
type Trial func(ctx context.Context, seed int64, point Point, trial int) (Outcome, error)

// Stop is the optional adaptive stopping rule: a point stops once the 95%
// Wilson half-width of Class's rate, evaluated over the canonical prefix
// of completed shards, drops to HalfWidth or below (after at least
// MinTrials trials). Because the rule only ever looks at canonical
// prefixes, stopping decisions — and therefore results — stay identical
// at any worker count.
type Stop struct {
	Class     string
	HalfWidth float64
	MinTrials int
}

// Spec parameterises a run.
type Spec struct {
	// Name labels the run's metrics and checkpoint.
	Name string
	// Seed is the root of every trial's derived RNG stream.
	Seed int64
	// Points lists the operating points; keys must be unique.
	Points []Point
	// Workers bounds the worker pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// ShardSize is the number of consecutive trials one work item bundles;
	// <= 0 means DefaultShardSize. The shard is the unit of scheduling,
	// checkpointing and stop-rule evaluation.
	ShardSize int
	// Classes, when non-empty, is the full outcome class set: tallies are
	// reported for every class (zero or not) and a trial returning an
	// unlisted class aborts the run as a programming error.
	Classes []string
	// Checkpoint, when non-empty, is the resume file path: completed
	// shards are persisted there and a compatible existing file seeds the
	// run. The file is removed when the run completes.
	Checkpoint string
	// CheckpointEvery batches checkpoint writes to every Nth completed
	// shard; <= 0 means every shard.
	CheckpointEvery int
	// Obs receives the run's telemetry; nil falls back to the process
	// default registry.
	Obs *obs.Registry
	// Stop, when non-nil, enables adaptive stopping.
	Stop *Stop
}

func (s *Spec) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Spec) shardSize() int {
	if s.ShardSize > 0 {
		return s.ShardSize
	}
	return DefaultShardSize
}

func (s *Spec) label() string {
	if s.Name != "" {
		return s.Name
	}
	return "run"
}

// Estimate is one class's rate over a point's counted trials, with its
// 95% Wilson score interval.
type Estimate struct {
	Class  string
	Count  int
	Trials int
	Rate   float64
	Lo, Hi float64
}

// PointResult is the aggregated outcome of one point.
type PointResult struct {
	Point Point
	// Trials is the number counted into the tallies — Point.Trials unless
	// the stopping rule froze an earlier prefix.
	Trials int
	// Counts tallies trials by class.
	Counts map[string]int
	// Mean averages Outcome.Value over the counted trials, reduced in
	// canonical trial order so it is bit-reproducible.
	Mean float64
	// Estimates carries one rate-with-interval per class, in the spec's
	// class order (or sorted observed classes when the spec names none).
	Estimates []Estimate
}

// Estimate returns the named class's estimate and false when absent.
func (p *PointResult) Estimate(class string) (Estimate, bool) {
	for _, e := range p.Estimates {
		if e.Class == class {
			return e, true
		}
	}
	return Estimate{}, false
}

// Result is a completed run: one PointResult per spec point, in spec
// order. It contains no timing, so byte-comparing two Results is a valid
// determinism check.
type Result struct {
	Name   string
	Seed   int64
	Trials int
	Points []PointResult
}

// shardRef locates one shard in the global canonical order.
type shardRef struct {
	point      int // index into Spec.Points
	index      int // shard index within the point
	start, end int
}

// shardResult is one executed (or restored) shard's local tally.
type shardResult struct {
	counts map[string]int
	sum    float64
}

// pointState is the collector's view of one point.
type pointState struct {
	point      Point
	done       []*shardResult // by shard index; nil until finished
	prefix     int            // consecutive done shards counted so far
	stopped    bool
	stopShards int // prefix frozen by the stopping rule
}

// shard disposition states (per global shard).
const (
	shardPending = iota
	shardCompleted
	shardRestored
	shardSkipped
)

// run is the mutable engine state shared by the workers under mu.
type run struct {
	spec  *Spec
	trial Trial

	mu        sync.Mutex
	points    []*pointState
	shards    []shardRef
	state     []uint8 // disposition per shard, indexed like shards
	next      int     // dispatch cursor
	sinceSave int
	firstErr  error
	cancel    context.CancelFunc

	countedTrials   int
	scheduledTrials int
	started         time.Time

	classSet map[string]bool

	trialsC, completedC, restoredC, skippedC, discardedC *obs.Counter
	progressG, etaG                                      *obs.Gauge
}

// Run executes the spec's Monte-Carlo trials on a bounded worker pool and
// returns the aggregated result. On cancellation (or a trial error) it
// persists a checkpoint of the completed shards — when the spec names a
// checkpoint path — and returns the causing error; rerunning the same
// spec resumes from that file and finishes with a Result bit-identical to
// an uninterrupted run's.
func Run(ctx context.Context, spec Spec, trial Trial) (*Result, error) {
	if trial == nil {
		return nil, fmt.Errorf("runner: nil trial function")
	}
	if len(spec.Points) == 0 {
		return nil, fmt.Errorf("runner: no points")
	}
	seen := make(map[string]bool, len(spec.Points))
	for _, p := range spec.Points {
		if p.Key == "" {
			return nil, fmt.Errorf("runner: point with empty key")
		}
		if seen[p.Key] {
			return nil, fmt.Errorf("runner: duplicate point key %q", p.Key)
		}
		seen[p.Key] = true
		if p.Trials < 1 {
			return nil, fmt.Errorf("runner: point %q has %d trials", p.Key, p.Trials)
		}
	}
	if spec.Stop != nil {
		if spec.Stop.Class == "" {
			return nil, fmt.Errorf("runner: stopping rule names no class")
		}
		if spec.Stop.HalfWidth <= 0 {
			return nil, fmt.Errorf("runner: stopping half-width %g <= 0", spec.Stop.HalfWidth)
		}
	}

	r := &run{spec: &spec, trial: trial, started: time.Now()}
	if len(spec.Classes) > 0 {
		r.classSet = make(map[string]bool, len(spec.Classes))
		for _, c := range spec.Classes {
			if r.classSet[c] {
				return nil, fmt.Errorf("runner: duplicate class %q", c)
			}
			r.classSet[c] = true
		}
		if spec.Stop != nil && !r.classSet[spec.Stop.Class] {
			return nil, fmt.Errorf("runner: stopping class %q not in class set", spec.Stop.Class)
		}
	}

	reg := obs.Or(spec.Obs)
	label := spec.label()
	r.trialsC = reg.Counter(TrialsMetric, "spec", label)
	r.completedC = reg.Counter(ShardsMetric, "spec", label, "state", "completed")
	r.restoredC = reg.Counter(ShardsMetric, "spec", label, "state", "restored")
	r.skippedC = reg.Counter(ShardsMetric, "spec", label, "state", "skipped")
	r.discardedC = reg.Counter(DiscardedMetric, "spec", label)
	r.progressG = reg.Gauge(ProgressMetric, "spec", label)
	r.etaG = reg.Gauge(ETAMetric, "spec", label)
	reg.Gauge(WorkersMetric, "spec", label).Set(float64(spec.workers()))

	size := spec.shardSize()
	r.points = make([]*pointState, len(spec.Points))
	for i, p := range spec.Points {
		n := (p.Trials + size - 1) / size
		r.points[i] = &pointState{point: p, done: make([]*shardResult, n)}
		for idx, start := 0, 0; start < p.Trials; idx, start = idx+1, start+size {
			end := start + size
			if end > p.Trials {
				end = p.Trials
			}
			r.shards = append(r.shards, shardRef{point: i, index: idx, start: start, end: end})
		}
		r.scheduledTrials += p.Trials
	}
	r.state = make([]uint8, len(r.shards))

	if spec.Checkpoint != "" {
		cp, err := loadCheckpoint(spec.Checkpoint, &spec)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			if err := r.restore(cp); err != nil {
				return nil, err
			}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r.cancel = cancel

	var wg sync.WaitGroup
	for w := 0; w < spec.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.work(ctx)
		}()
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	// Shards never dispatched (or abandoned mid-shard) end as skipped, so
	// the dispositions always account for every shard exactly once.
	leftover := 0
	for i := range r.state {
		if r.state[i] == shardPending {
			r.state[i] = shardSkipped
			leftover++
		}
	}
	r.skippedC.Add(uint64(leftover))

	if r.firstErr != nil {
		r.checkpointLocked()
		return nil, r.firstErr
	}
	if err := ctx.Err(); err != nil {
		r.checkpointLocked()
		done := 0
		for _, st := range r.points {
			for _, sr := range st.done {
				if sr != nil {
					done++
				}
			}
		}
		return nil, fmt.Errorf("runner: run interrupted with %d/%d shards complete (checkpoint %s): %w",
			done, len(r.shards), orNone(spec.Checkpoint), err)
	}

	if spec.Checkpoint != "" {
		if err := os.Remove(spec.Checkpoint); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("runner: remove finished checkpoint: %w", err)
		}
	}
	r.progressG.Set(1)
	r.etaG.Set(0)
	return r.reduce(), nil
}

func orNone(path string) string {
	if path == "" {
		return "none"
	}
	return path
}

// restore seeds the run state from a validated checkpoint. Unknown shard
// ranges or classes mean the file was produced by an incompatible build
// and are rejected rather than silently dropped.
func (r *run) restore(cp *Checkpoint) error {
	byKey := make(map[string]int, len(r.shards))
	for i, sh := range r.shards {
		byKey[fmt.Sprintf("%s\x00%d", r.spec.Points[sh.point].Key, sh.start)] = i
	}
	restored := 0
	for _, rec := range cp.Shards {
		i, ok := byKey[fmt.Sprintf("%s\x00%d", rec.Point, rec.Start)]
		if !ok {
			return fmt.Errorf("runner: checkpoint shard %s[%d:%d) does not exist in this spec", rec.Point, rec.Start, rec.End)
		}
		sh := r.shards[i]
		if sh.end != rec.End {
			return fmt.Errorf("runner: checkpoint shard %s[%d:%d) does not match spec shard [%d:%d)", rec.Point, rec.Start, rec.End, sh.start, sh.end)
		}
		counts := make(map[string]int, len(rec.Counts))
		for class, n := range rec.Counts {
			if r.classSet != nil && !r.classSet[class] {
				return fmt.Errorf("runner: checkpoint shard %s[%d:%d) counts unknown class %q", rec.Point, rec.Start, rec.End, class)
			}
			counts[class] = n
		}
		r.points[sh.point].done[sh.index] = &shardResult{counts: counts, sum: rec.Sum}
		r.state[i] = shardRestored
		restored++
	}
	r.restoredC.Add(uint64(restored))
	for _, st := range r.points {
		r.advanceLocked(st)
	}
	r.updateProgressLocked()
	return nil
}

// work is one worker's dispatch loop: pop the next runnable shard (past
// restored ones, marking shards of stopped points skipped) and execute it.
func (r *run) work(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		r.mu.Lock()
		i, found := -1, false
		var sh shardRef
		for r.next < len(r.shards) {
			i = r.next
			r.next++
			sh = r.shards[i]
			st := r.points[sh.point]
			if st.done[sh.index] != nil { // restored from checkpoint
				continue
			}
			if st.stopped {
				r.state[i] = shardSkipped
				r.skippedC.Inc()
				continue
			}
			found = true
			break
		}
		r.mu.Unlock()
		if !found {
			return
		}
		r.execute(ctx, i, sh)
	}
}

// execute runs one shard's trials and records the result.
func (r *run) execute(ctx context.Context, i int, sh shardRef) {
	point := r.spec.Points[sh.point]
	counts := make(map[string]int, 4)
	sum := 0.0
	for t := sh.start; t < sh.end; t++ {
		if ctx.Err() != nil {
			return // abandoned mid-shard; accounted as skipped at the end
		}
		out, err := r.trial(ctx, TrialSeed(r.spec.Seed, point.Key, t), point, t)
		if err != nil {
			r.fail(fmt.Errorf("runner: point %q trial %d: %w", point.Key, t, err))
			return
		}
		if r.classSet != nil && !r.classSet[out.Class] {
			r.fail(fmt.Errorf("runner: point %q trial %d returned class %q, not in %v", point.Key, t, out.Class, r.spec.Classes))
			return
		}
		counts[out.Class]++
		sum += out.Value
		r.trialsC.Inc()
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.points[sh.point]
	st.done[sh.index] = &shardResult{counts: counts, sum: sum}
	r.state[i] = shardCompleted
	r.completedC.Inc()
	if st.stopped {
		// The stopping rule froze this point while the shard was in
		// flight; the work is preserved (and checkpointed) but excluded
		// from the tally.
		r.discardedC.Inc()
	} else {
		r.advanceLocked(st)
		r.updateProgressLocked()
	}
	r.sinceSave++
	every := r.spec.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if r.spec.Checkpoint != "" && r.sinceSave >= every {
		r.checkpointLocked()
		r.sinceSave = 0
	}
}

// fail records the run's first error and cancels the siblings.
func (r *run) fail(err error) {
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
	r.cancel()
}

// advanceLocked extends a point's counted prefix over consecutively
// finished shards, evaluating the stopping rule at every new boundary.
// Only prefix boundaries ever feed the rule, so the decision sequence is
// a pure function of the trial outcomes, not of scheduling.
func (r *run) advanceLocked(st *pointState) {
	size := r.spec.shardSize()
	for st.prefix < len(st.done) && st.done[st.prefix] != nil && !st.stopped {
		st.prefix++
		counted := st.prefix * size
		if counted > st.point.Trials {
			counted = st.point.Trials
		}
		r.countedTrials += shardTrials(st, st.prefix-1, size)
		if stop := r.spec.Stop; stop != nil && counted >= stop.MinTrials {
			n := 0
			for _, sr := range st.done[:st.prefix] {
				n += sr.counts[stop.Class]
			}
			if WilsonHalfWidth(n, counted) <= stop.HalfWidth {
				st.stopped = true
				st.stopShards = st.prefix
				for j := st.prefix; j < len(st.done); j++ {
					if st.done[j] != nil {
						r.discardedC.Inc()
					}
					r.scheduledTrials -= shardTrials(st, j, size)
				}
			}
		}
	}
}

// shardTrials is the size of a point's idx-th shard (the last one may be
// short).
func shardTrials(st *pointState, idx, size int) int {
	start := idx * size
	end := start + size
	if end > st.point.Trials {
		end = st.point.Trials
	}
	return end - start
}

// updateProgressLocked refreshes the progress and ETA gauges.
func (r *run) updateProgressLocked() {
	if r.scheduledTrials <= 0 {
		return
	}
	p := float64(r.countedTrials) / float64(r.scheduledTrials)
	r.progressG.Set(p)
	if p > 0 {
		r.etaG.Set(time.Since(r.started).Seconds() * (1 - p) / p)
	}
}

// checkpointLocked persists every finished shard. A write failure is a
// run failure — losing resume state silently would defeat the point.
func (r *run) checkpointLocked() {
	if r.spec.Checkpoint == "" {
		return
	}
	var records []ShardRecord
	size := r.spec.shardSize()
	for _, st := range r.points {
		for idx, sr := range st.done {
			if sr == nil {
				continue
			}
			start := idx * size
			records = append(records, ShardRecord{
				Point:  st.point.Key,
				Start:  start,
				End:    start + shardTrials(st, idx, size),
				Counts: sr.counts,
				Sum:    sr.sum,
			})
		}
	}
	if err := saveCheckpoint(r.spec.Checkpoint, r.spec, records); err != nil && r.firstErr == nil {
		r.firstErr = err
		r.cancel()
	}
}

// reduce folds the counted shards into the final Result in canonical
// (point, shard) order.
func (r *run) reduce() *Result {
	size := r.spec.shardSize()
	res := &Result{Name: r.spec.Name, Seed: r.spec.Seed, Points: make([]PointResult, len(r.points))}
	for i, st := range r.points {
		counted := len(st.done)
		if st.stopped {
			counted = st.stopShards
		}
		counts := make(map[string]int)
		sum := 0.0
		trials := 0
		for idx := 0; idx < counted; idx++ {
			sr := st.done[idx]
			for class, n := range sr.counts {
				counts[class] += n
			}
			sum += sr.sum
			trials += shardTrials(st, idx, size)
		}
		classes := r.spec.Classes
		if len(classes) == 0 {
			for class := range counts {
				classes = append(classes, class)
			}
			sort.Strings(classes)
		}
		pr := PointResult{Point: st.point, Trials: trials, Counts: counts}
		if trials > 0 {
			pr.Mean = sum / float64(trials)
		}
		for _, class := range classes {
			n := counts[class]
			lo, hi := Wilson(n, trials)
			rate := 0.0
			if trials > 0 {
				rate = float64(n) / float64(trials)
			}
			pr.Estimates = append(pr.Estimates, Estimate{
				Class: class, Count: n, Trials: trials,
				Rate: rate, Lo: lo, Hi: hi,
			})
			if _, ok := counts[class]; !ok {
				counts[class] = 0
			}
		}
		res.Points[i] = pr
		res.Trials += trials
	}
	return res
}
