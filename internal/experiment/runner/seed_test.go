package runner

import "testing"

// TestTrialSeedGolden pins the seed-derivation function to golden values:
// checkpoints and published results rely on every build deriving the same
// per-trial streams, so any change here is a breaking format change.
func TestTrialSeedGolden(t *testing.T) {
	golden := []struct {
		seed  int64
		key   string
		trial int
		want  int64
	}{
		{1, "ch11", 0, -2869653793822115724},
		{1, "ch11", 1, -7263777605112545198},
		{1, "ch26", 0, 5368747184567179083},
		{2, "ch11", 0, 6812741049973565068},
		{1, "snr7", 41, -72005918860175964},
		{-3, "", 0, -2231703117299399175},
		{0, "x", 1 << 30, 8580622453764345957},
	}
	for _, g := range golden {
		if got := TrialSeed(g.seed, g.key, g.trial); got != g.want {
			t.Errorf("TrialSeed(%d, %q, %d) = %d, want %d", g.seed, g.key, g.trial, got, g.want)
		}
	}
}

// TestTrialSeedDistinct checks that neighbouring coordinates land on
// distinct streams in every dimension.
func TestTrialSeedDistinct(t *testing.T) {
	seen := make(map[int64]string)
	add := func(label string, s int64) {
		if prev, ok := seen[s]; ok {
			t.Fatalf("seed collision between %s and %s", prev, label)
		}
		seen[s] = label
	}
	for trial := 0; trial < 200; trial++ {
		add("trial", TrialSeed(1, "p", trial))
	}
	for seed := int64(0); seed < 200; seed++ {
		add("seed", TrialSeed(seed, "p", 12345))
	}
	for _, key := range []string{"ch11", "ch12", "snr0", "snr-2", "p0", "p1"} {
		add("key "+key, TrialSeed(1, key, 12345))
	}
}

// TestTrialSeedStable checks the function is pure: same coordinates, same
// seed, every time.
func TestTrialSeedStable(t *testing.T) {
	for i := 0; i < 10; i++ {
		if TrialSeed(7, "stable", 3) != TrialSeed(7, "stable", 3) {
			t.Fatal("TrialSeed is not a pure function")
		}
	}
}
