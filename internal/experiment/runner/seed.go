// Package runner is the generic trial-sharded Monte-Carlo engine behind
// the evaluation experiments. It schedules (point, trial) work items onto
// a bounded worker pool, derives every trial's randomness deterministically
// from (seed, point key, trial index), honours context cancellation
// mid-sweep, checkpoints completed shards to a versioned JSON file for
// resume, publishes progress and ETA gauges, and attaches Wilson-score
// confidence intervals to every rate estimate.
//
// The central property is scheduling independence: because a trial's RNG
// seed depends only on (seed, point key, trial index) and all aggregation
// reduces shard results in canonical (point, shard) order, a run's Result
// is bit-identical at any worker count, any scheduling order, and across
// any checkpoint/resume boundary.
package runner

import "math/bits"

// splitmix64 is the finaliser of the SplitMix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators"): a cheap invertible
// mixer whose output passes BigCrush, which makes it a good one-way hash
// from structured coordinates to independent-looking seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a point key with the FNV-1a parameters, folding the key
// string into a single word before mixing.
func fnv64a(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// TrialSeed derives the deterministic RNG seed of one Monte-Carlo trial
// from the run seed, the operating point's key and the trial index. Each
// coordinate passes through a splitmix64 round, so adjacent trials, points
// and run seeds land on unrelated streams; the result depends on nothing
// else, which is what makes runs order- and parallelism-independent.
func TrialSeed(seed int64, pointKey string, trial int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ bits.RotateLeft64(fnv64a(pointKey), 17))
	h = splitmix64(h ^ uint64(int64(trial)))
	return int64(h)
}
