package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// CheckpointVersion is the current on-disk checkpoint format version.
// Decoding rejects files from a newer version descriptively rather than
// guessing at their layout.
const CheckpointVersion = 1

// ShardRecord is one completed shard in a checkpoint: the class tallies
// and value sum of trials [Start, End) of one point. Within a shard the
// sum accumulates in trial order, so the record is bit-reproducible no
// matter which worker ran it.
type ShardRecord struct {
	Point  string         `json:"point"`
	Start  int            `json:"start"`
	End    int            `json:"end"`
	Counts map[string]int `json:"counts,omitempty"`
	Sum    float64        `json:"sum,omitempty"`
}

// Checkpoint is the versioned resume file of a run: the spec fingerprint
// it belongs to and every shard completed so far, in canonical order.
type Checkpoint struct {
	Version     int           `json:"version"`
	Spec        string        `json:"spec"`
	Seed        int64         `json:"seed"`
	Fingerprint string        `json:"fingerprint"`
	Shards      []ShardRecord `json:"shards"`
}

// fingerprint folds everything that determines a run's work layout — name,
// seed, shard size, classes, and each point's key and trial count — into a
// hex token. A resume against a spec with a different fingerprint would
// silently misattribute shards, so Load refuses it.
func fingerprint(spec *Spec) string {
	h := splitmix64(uint64(spec.Seed))
	h = splitmix64(h ^ fnv64a(spec.Name))
	h = splitmix64(h ^ uint64(int64(spec.shardSize())))
	for _, c := range spec.Classes {
		h = splitmix64(h ^ fnv64a(c))
	}
	for _, p := range spec.Points {
		h = splitmix64(h ^ fnv64a(p.Key))
		h = splitmix64(h ^ uint64(int64(p.Trials)))
	}
	return strconv.FormatUint(h, 16)
}

// DecodeCheckpoint parses and validates a checkpoint file's bytes. It is
// the single entry point for untrusted input (the fuzz target drives it):
// corrupt, truncated, or future-version data comes back as a descriptive
// error, never a panic.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("runner: corrupt checkpoint: %w", err)
	}
	if cp.Version <= 0 {
		return nil, fmt.Errorf("runner: checkpoint missing version")
	}
	if cp.Version > CheckpointVersion {
		return nil, fmt.Errorf("runner: checkpoint version %d is newer than supported version %d — refusing to guess at its layout", cp.Version, CheckpointVersion)
	}
	for i, s := range cp.Shards {
		if s.Point == "" {
			return nil, fmt.Errorf("runner: checkpoint shard %d has no point key", i)
		}
		if s.Start < 0 || s.End <= s.Start {
			return nil, fmt.Errorf("runner: checkpoint shard %d has invalid trial range [%d, %d)", i, s.Start, s.End)
		}
		total := 0
		for class, n := range s.Counts {
			if n < 0 {
				return nil, fmt.Errorf("runner: checkpoint shard %d counts %d trials for class %q", i, n, class)
			}
			total += n
		}
		if total != s.End-s.Start {
			return nil, fmt.Errorf("runner: checkpoint shard %d tallies %d trials for range [%d, %d)", i, total, s.Start, s.End)
		}
	}
	return &cp, nil
}

// loadCheckpoint reads a checkpoint from disk and verifies it belongs to
// spec. A missing file is not an error — it simply means a fresh run.
func loadCheckpoint(path string, spec *Spec) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("runner: read checkpoint: %w", err)
	}
	cp, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%w (from %s)", err, path)
	}
	if want := fingerprint(spec); cp.Fingerprint != want {
		return nil, fmt.Errorf("runner: checkpoint %s belongs to a different run (spec %q seed %d, fingerprint %s, want %s) — delete it or point -checkpoint elsewhere",
			path, cp.Spec, cp.Seed, cp.Fingerprint, want)
	}
	return cp, nil
}

// saveCheckpoint writes the completed shards atomically (temp file +
// rename), so a crash mid-write never leaves a truncated checkpoint where
// a good one stood. Shards are emitted in canonical order to keep the file
// diffable between saves.
func saveCheckpoint(path string, spec *Spec, shards []ShardRecord) error {
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].Point != shards[j].Point {
			return shards[i].Point < shards[j].Point
		}
		return shards[i].Start < shards[j].Start
	})
	cp := Checkpoint{
		Version:     CheckpointVersion,
		Spec:        spec.Name,
		Seed:        spec.Seed,
		Fingerprint: fingerprint(spec),
		Shards:      shards,
	}
	data, err := json.MarshalIndent(&cp, "", " ")
	if err != nil {
		return fmt.Errorf("runner: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: write checkpoint: %w", err)
	}
	return nil
}
