package runner

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %.10f, want %.10f", name, got, want)
	}
}

// TestWilsonGolden pins the interval to independently computed values.
func TestWilsonGolden(t *testing.T) {
	lo, hi := Wilson(5, 10)
	approx(t, "lo(5,10)", lo, 0.2365930905)
	approx(t, "hi(5,10)", hi, 0.7634069095)

	lo, hi = Wilson(0, 100)
	approx(t, "lo(0,100)", lo, 0)
	approx(t, "hi(0,100)", hi, 0.0369934982)

	lo, hi = Wilson(100, 100)
	approx(t, "lo(100,100)", lo, 0.9630065018)
	approx(t, "hi(100,100)", hi, 1)

	lo, hi = Wilson(98, 100)
	approx(t, "lo(98,100)", lo, 0.9299882093)
	approx(t, "hi(98,100)", hi, 0.9944980324)
}

// TestWilsonProperties checks the structural guarantees every consumer
// leans on: containment of the point estimate, [0,1] bounds, symmetry of
// complements, and shrinking width with more trials.
func TestWilsonProperties(t *testing.T) {
	for _, tc := range []struct{ k, n int }{{0, 1}, {1, 1}, {3, 7}, {50, 100}, {999, 1000}} {
		lo, hi := Wilson(tc.k, tc.n)
		p := float64(tc.k) / float64(tc.n)
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("Wilson(%d,%d) = [%g, %g] not a valid interval", tc.k, tc.n, lo, hi)
		}
		if p < lo || p > hi {
			t.Errorf("Wilson(%d,%d) = [%g, %g] excludes the point estimate %g", tc.k, tc.n, lo, hi, p)
		}
		// Complement symmetry: the interval for n−k failures mirrors it.
		clo, chi := Wilson(tc.n-tc.k, tc.n)
		approx(t, "complement lo", clo, 1-hi)
		approx(t, "complement hi", chi, 1-lo)
	}
	if w10, w1000 := WilsonHalfWidth(5, 10), WilsonHalfWidth(500, 1000); w1000 >= w10 {
		t.Errorf("half-width did not shrink with trials: %g at n=10, %g at n=1000", w10, w1000)
	}
	if lo, hi := Wilson(0, 0); lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = [%g, %g], want the vacuous [0, 1]", lo, hi)
	}
}
