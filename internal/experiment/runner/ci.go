package runner

import "math"

// z95 is the two-sided 95% normal quantile used for every interval the
// runner reports.
const z95 = 1.959963984540054

// Wilson returns the 95% Wilson score interval for a rate estimated from
// count successes in trials attempts. Unlike the Wald interval it stays
// inside [0, 1] and behaves sensibly at the extremes (0 or trials
// successes), which Monte-Carlo PER estimates hit routinely on clean
// channels. Zero trials yields the vacuous [0, 1].
func Wilson(count, trials int) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(count) / n
	z2 := z95 * z95
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z95 * math.Sqrt(p*(1-p)/n+z2/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	// At the extremes the exact bound is an endpoint — center±half reduces
	// algebraically to (1 + z²/n)/(1 + z²/n) — but floating point can land
	// one ulp inside; snap to the exact value.
	if count <= 0 {
		lo = 0
	}
	if count >= trials {
		hi = 1
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// WilsonHalfWidth returns half the width of the 95% Wilson interval — the
// quantity the adaptive stopping rule drives below its target.
func WilsonHalfWidth(count, trials int) float64 {
	lo, hi := Wilson(count, trials)
	return (hi - lo) / 2
}
