package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"wazabee/internal/obs"
)

// coinTrial is a synthetic Monte-Carlo trial: a biased coin whose flip is
// a pure function of the derived seed, mirroring how the real experiments
// seed their media.
func coinTrial(bias float64) Trial {
	return func(_ context.Context, seed int64, _ Point, _ int) (Outcome, error) {
		v := rand.New(rand.NewSource(seed)).Float64()
		class := "bad"
		if v < bias {
			class = "ok"
		}
		return Outcome{Class: class, Value: v}, nil
	}
}

func testSpec(workers int) Spec {
	return Spec{
		Name: "test",
		Seed: 42,
		Points: []Point{
			{Key: "p0", Trials: 37},
			{Key: "p1", Trials: 64},
			{Key: "p2", Trials: 5},
		},
		Workers:   workers,
		ShardSize: 8,
		Classes:   []string{"ok", "bad"},
		Obs:       obs.NewRegistry(),
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunDeterministicAcrossWorkers is the engine's core guarantee: the
// Result is byte-identical at any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 3, 8} {
		res, err := Run(context.Background(), testSpec(workers), coinTrial(0.7))
		if err != nil {
			t.Fatal(err)
		}
		data := mustJSON(t, res)
		if ref == nil {
			ref = data
			continue
		}
		if string(data) != string(ref) {
			t.Errorf("workers=%d result differs:\n%s\nvs\n%s", workers, data, ref)
		}
	}
}

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, testSpec(1), nil); err == nil {
		t.Error("nil trial accepted")
	}
	spec := testSpec(1)
	spec.Points = nil
	if _, err := Run(ctx, spec, coinTrial(1)); err == nil {
		t.Error("empty point list accepted")
	}
	spec = testSpec(1)
	spec.Points[1].Key = "p0"
	if _, err := Run(ctx, spec, coinTrial(1)); err == nil {
		t.Error("duplicate point key accepted")
	}
	spec = testSpec(1)
	spec.Points[0].Trials = 0
	if _, err := Run(ctx, spec, coinTrial(1)); err == nil {
		t.Error("zero-trial point accepted")
	}
	spec = testSpec(1)
	spec.Stop = &Stop{Class: "", HalfWidth: 0.1}
	if _, err := Run(ctx, spec, coinTrial(1)); err == nil {
		t.Error("stopping rule without class accepted")
	}
	spec = testSpec(1)
	spec.Stop = &Stop{Class: "nope", HalfWidth: 0.1}
	if _, err := Run(ctx, spec, coinTrial(1)); err == nil {
		t.Error("stopping class outside the class set accepted")
	}
}

func TestRunTrialErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	trial := func(_ context.Context, _ int64, p Point, i int) (Outcome, error) {
		if p.Key == "p1" && i == 9 {
			return Outcome{}, boom
		}
		return Outcome{Class: "ok"}, nil
	}
	_, err := Run(context.Background(), testSpec(4), trial)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestRunUnknownClassAborts(t *testing.T) {
	trial := func(_ context.Context, _ int64, _ Point, _ int) (Outcome, error) {
		return Outcome{Class: "mystery"}, nil
	}
	if _, err := Run(context.Background(), testSpec(2), trial); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestRunEstimates checks the tallies, the attached Wilson intervals and
// the canonical-order mean.
func TestRunEstimates(t *testing.T) {
	spec := Spec{
		Name:      "est",
		Seed:      1,
		Points:    []Point{{Key: "p", Trials: 20}},
		Workers:   4,
		ShardSize: 4,
		Classes:   []string{"even", "odd", "never"},
		Obs:       obs.NewRegistry(),
	}
	trial := func(_ context.Context, _ int64, _ Point, i int) (Outcome, error) {
		class := "even"
		if i%2 == 1 {
			class = "odd"
		}
		return Outcome{Class: class, Value: float64(i)}, nil
	}
	res, err := Run(context.Background(), spec, trial)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if p.Trials != 20 || res.Trials != 20 {
		t.Fatalf("trials = %d/%d, want 20", p.Trials, res.Trials)
	}
	if p.Counts["even"] != 10 || p.Counts["odd"] != 10 || p.Counts["never"] != 0 {
		t.Fatalf("counts = %v", p.Counts)
	}
	if want := 9.5; p.Mean != want { // mean of 0..19
		t.Errorf("mean = %g, want %g", p.Mean, want)
	}
	if len(p.Estimates) != 3 {
		t.Fatalf("estimates = %d, want one per class", len(p.Estimates))
	}
	est, ok := p.Estimate("even")
	if !ok {
		t.Fatal("no estimate for class even")
	}
	lo, hi := Wilson(10, 20)
	if est.Rate != 0.5 || est.Lo != lo || est.Hi != hi {
		t.Errorf("estimate = %+v, want rate 0.5 interval [%g, %g]", est, lo, hi)
	}
	if never, _ := p.Estimate("never"); never.Count != 0 || never.Rate != 0 {
		t.Errorf("zero-count class estimate = %+v", never)
	}
}

// TestRunCancellationAndResume covers the checkpoint lifecycle: a run
// cancelled mid-sweep leaves a partial checkpoint, and resuming from it
// finishes with exactly the result of an uninterrupted run.
func TestRunCancellationAndResume(t *testing.T) {
	ref, err := Run(context.Background(), testSpec(2), coinTrial(0.6))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "resume.json")
	spec := testSpec(2)
	spec.ShardSize = 1 // every executed trial lands in the checkpoint
	spec.Checkpoint = path

	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	cancelling := func(c context.Context, seed int64, p Point, i int) (Outcome, error) {
		if executed.Add(1) == 7 {
			cancel()
		}
		return coinTrial(0.6)(c, seed, p, i)
	}
	_, err = Run(ctx, spec, cancelling)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("no checkpoint after cancellation: %v", rerr)
	}
	cp, derr := DecodeCheckpoint(data)
	if derr != nil {
		t.Fatal(derr)
	}
	total := 37 + 64 + 5
	if len(cp.Shards) == 0 || len(cp.Shards) >= total {
		t.Fatalf("checkpoint has %d shards, want a partial run (0 < n < %d)", len(cp.Shards), total)
	}

	// Resume with the same spec: the restored shards plus the fresh ones
	// must reduce to the uninterrupted result.
	res, err := Run(context.Background(), spec, coinTrial(0.6))
	if err != nil {
		t.Fatal(err)
	}
	// The reference ran with the default shard size; rerun it at the
	// resumed spec's shard size for an apples-to-apples comparison.
	fine := testSpec(2)
	fine.ShardSize = 1
	refShard, err := Run(context.Background(), fine, coinTrial(0.6))
	if err != nil {
		t.Fatal(err)
	}
	if string(mustJSON(t, res)) != string(mustJSON(t, refShard)) {
		t.Error("resumed result differs from uninterrupted run")
	}
	// Counts must also agree with the coarse-sharded reference.
	for i := range ref.Points {
		if !reflect.DeepEqual(ref.Points[i].Counts, res.Points[i].Counts) {
			t.Errorf("point %d counts differ across shard sizes: %v vs %v", i, ref.Points[i].Counts, res.Points[i].Counts)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("checkpoint not removed after a completed run")
	}
}

// TestRunAdaptiveStop checks the run-until-CI rule: an overwhelmingly
// one-sided coin reaches the half-width target long before the trial
// budget, at any worker count, with identical results.
func TestRunAdaptiveStop(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 8} {
		spec := Spec{
			Name:      "stop",
			Seed:      9,
			Points:    []Point{{Key: "sure", Trials: 4096}},
			Workers:   workers,
			ShardSize: 16,
			Classes:   []string{"ok", "bad"},
			Obs:       obs.NewRegistry(),
			Stop:      &Stop{Class: "ok", HalfWidth: 0.05, MinTrials: 32},
		}
		res, err := Run(context.Background(), spec, coinTrial(2)) // always ok
		if err != nil {
			t.Fatal(err)
		}
		p := res.Points[0]
		if p.Trials >= 4096 {
			t.Fatalf("workers=%d: adaptive stop never triggered (%d trials)", workers, p.Trials)
		}
		if p.Trials < 32 {
			t.Fatalf("workers=%d: stopped before MinTrials (%d)", workers, p.Trials)
		}
		est, _ := p.Estimate("ok")
		if est.Rate != 1 {
			t.Fatalf("workers=%d: rate = %g, want 1", workers, est.Rate)
		}
		if hw := (est.Hi - est.Lo) / 2; hw > 0.05 {
			t.Errorf("workers=%d: stopped with half-width %g > target", workers, hw)
		}
		data := mustJSON(t, res)
		if ref == nil {
			ref = data
		} else if string(data) != string(ref) {
			t.Errorf("adaptive-stop result differs between worker counts")
		}
	}
}

// TestRunMetricsAccounting checks the progress gauges and the exact shard
// disposition accounting on a clean run.
func TestRunMetricsAccounting(t *testing.T) {
	spec := testSpec(3)
	reg := spec.Obs
	if _, err := Run(context.Background(), spec, coinTrial(0.5)); err != nil {
		t.Fatal(err)
	}
	totalTrials := uint64(37 + 64 + 5)
	totalShards := uint64(5 + 8 + 1) // ceil(37/8) + ceil(64/8) + ceil(5/8)
	if got := reg.Counter(TrialsMetric, "spec", "test").Value(); got != totalTrials {
		t.Errorf("trials counter = %d, want %d", got, totalTrials)
	}
	completed := reg.Counter(ShardsMetric, "spec", "test", "state", "completed").Value()
	restored := reg.Counter(ShardsMetric, "spec", "test", "state", "restored").Value()
	skipped := reg.Counter(ShardsMetric, "spec", "test", "state", "skipped").Value()
	if completed != totalShards || restored != 0 || skipped != 0 {
		t.Errorf("shard accounting = completed %d restored %d skipped %d, want %d/0/0",
			completed, restored, skipped, totalShards)
	}
	if got := reg.Counter(DiscardedMetric, "spec", "test").Value(); got != 0 {
		t.Errorf("discarded = %d, want 0", got)
	}
	if p := reg.Gauge(ProgressMetric, "spec", "test").Value(); p != 1 {
		t.Errorf("final progress = %g, want 1", p)
	}
	if eta := reg.Gauge(ETAMetric, "spec", "test").Value(); eta != 0 {
		t.Errorf("final ETA = %g, want 0", eta)
	}
	if w := reg.Gauge(WorkersMetric, "spec", "test").Value(); w != 3 {
		t.Errorf("workers gauge = %g, want 3", w)
	}
}

// TestRunCheckpointFingerprintMismatch: a checkpoint from a different
// seed must be refused, not silently merged.
func TestRunCheckpointFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	spec := testSpec(1)
	spec.ShardSize = 1
	spec.Checkpoint = path

	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	trial := func(c context.Context, seed int64, p Point, i int) (Outcome, error) {
		if executed.Add(1) == 3 {
			cancel()
		}
		return coinTrial(0.5)(c, seed, p, i)
	}
	if _, err := Run(ctx, spec, trial); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup run: %v", err)
	}

	other := spec
	other.Seed = 43
	_, err := Run(context.Background(), other, coinTrial(0.5))
	if err == nil {
		t.Fatal("checkpoint from a different seed accepted")
	}
	if msg := err.Error(); !containsAll(msg, "different run") {
		t.Errorf("unhelpful mismatch error: %v", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestRunShuffledPointOrder: reordering the spec's points must not change
// any point's individual result (the persweep ordering hazard, abstracted).
func TestRunShuffledPointOrder(t *testing.T) {
	fwd, err := Run(context.Background(), testSpec(2), coinTrial(0.6))
	if err != nil {
		t.Fatal(err)
	}
	rev := testSpec(2)
	for i, j := 0, len(rev.Points)-1; i < j; i, j = i+1, j-1 {
		rev.Points[i], rev.Points[j] = rev.Points[j], rev.Points[i]
	}
	back, err := Run(context.Background(), rev, coinTrial(0.6))
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range fwd.Points {
		var match *PointResult
		for i := range back.Points {
			if back.Points[i].Point.Key == fp.Point.Key {
				match = &back.Points[i]
				break
			}
		}
		if match == nil {
			t.Fatalf("point %q missing from reversed run", fp.Point.Key)
		}
		if string(mustJSON(t, fp)) != string(mustJSON(t, *match)) {
			t.Errorf("point %q differs when the point order is reversed", fp.Point.Key)
		}
	}
}

// TestRunAlreadyCancelled: a dead context produces no work, an error, and
// (with a checkpoint path) an empty-but-valid checkpoint file.
func TestRunAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := testSpec(2)
	spec.Checkpoint = filepath.Join(t.TempDir(), "dead.json")
	_, err := Run(ctx, spec, coinTrial(0.5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, rerr := os.ReadFile(spec.Checkpoint)
	if rerr != nil {
		t.Fatalf("no checkpoint written: %v", rerr)
	}
	cp, derr := DecodeCheckpoint(data)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(cp.Shards) != 0 {
		t.Errorf("cancelled-before-start checkpoint has %d shards", len(cp.Shards))
	}
}

func ExampleRun() {
	spec := Spec{
		Name:    "example",
		Seed:    1,
		Points:  []Point{{Key: "p", Trials: 100}},
		Workers: 4,
		Classes: []string{"ok", "bad"},
		Obs:     obs.NewRegistry(),
	}
	trial := func(_ context.Context, seed int64, _ Point, _ int) (Outcome, error) {
		if rand.New(rand.NewSource(seed)).Float64() < 0.9 {
			return Outcome{Class: "ok"}, nil
		}
		return Outcome{Class: "bad"}, nil
	}
	res, _ := Run(context.Background(), spec, trial)
	est, _ := res.Points[0].Estimate("ok")
	fmt.Printf("ok rate %.2f, 95%% CI [%.2f, %.2f]\n", est.Rate, est.Lo, est.Hi)
	// Output: ok rate 0.91, 95% CI [0.84, 0.95]
}
