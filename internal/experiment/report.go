package experiment

import (
	"fmt"
	"strings"
)

// PaperRow is one row of Table III as published.
type PaperRow struct {
	Channel   int
	Valid     int
	Corrupted int
}

// PaperTable3 returns the published Table III column for a chip name and
// side, and false for combinations the paper does not report.
func PaperTable3(chipName string, side Side) ([]PaperRow, bool) {
	key := chipName + "/" + side.String()
	rows, ok := paperTable3[key]
	return append([]PaperRow{}, rows...), ok
}

// paperTable3 transcribes Table III of the paper (valid / corrupted per
// 100 frames; the remainder was not received).
var paperTable3 = map[string][]PaperRow{
	"nRF52832/reception": {
		{11, 100, 0}, {12, 100, 0}, {13, 100, 0}, {14, 100, 0},
		{15, 99, 1}, {16, 100, 0}, {17, 98, 1}, {18, 95, 2},
		{19, 100, 0}, {20, 100, 0}, {21, 98, 2}, {22, 95, 2},
		{23, 97, 0}, {24, 99, 1}, {25, 100, 0}, {26, 97, 2},
	},
	"CC1352-R1/reception": {
		{11, 100, 0}, {12, 100, 0}, {13, 100, 0}, {14, 100, 0},
		{15, 100, 0}, {16, 97, 0}, {17, 99, 0}, {18, 100, 0},
		{19, 100, 0}, {20, 100, 0}, {21, 100, 0}, {22, 98, 0},
		{23, 96, 0}, {24, 100, 0}, {25, 100, 0}, {26, 100, 0},
	},
	"nRF52832/transmission": {
		{11, 98, 0}, {12, 100, 0}, {13, 95, 1}, {14, 97, 3},
		{15, 100, 0}, {16, 90, 3}, {17, 94, 3}, {18, 91, 2},
		{19, 97, 0}, {20, 100, 0}, {21, 100, 0}, {22, 100, 0},
		{23, 100, 0}, {24, 100, 0}, {25, 100, 0}, {26, 98, 1},
	},
	"CC1352-R1/transmission": {
		{11, 100, 0}, {12, 100, 0}, {13, 100, 0}, {14, 100, 0},
		{15, 100, 0}, {16, 100, 0}, {17, 96, 0}, {18, 95, 0},
		{19, 100, 0}, {20, 100, 0}, {21, 100, 0}, {22, 100, 0},
		{23, 100, 0}, {24, 100, 0}, {25, 100, 0}, {26, 100, 0},
	},
}

// PaperAverageValid returns the published average valid-frame percentage
// for a chip/side, and false when unreported.
func PaperAverageValid(chipName string, side Side) (float64, bool) {
	rows, ok := PaperTable3(chipName, side)
	if !ok {
		return 0, false
	}
	sum := 0
	for _, r := range rows {
		sum += r.Valid
	}
	return float64(sum) / float64(len(rows)), true
}

// FormatComparison renders a measured result next to the paper's numbers
// in the layout of Table III.
func FormatComparison(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s primitive (%d frames/channel)\n", r.Chip, r.Side, r.Frames)
	fmt.Fprintf(&b, "%-8s %24s   %24s\n", "", "paper (valid/corrupted)", "measured (valid/corr/lost)")
	paper, havePaper := PaperTable3(r.Chip, r.Side)
	for i, row := range r.Rows {
		paperCell := "—"
		if havePaper && i < len(paper) {
			paperCell = fmt.Sprintf("%3d / %d", paper[i].Valid, paper[i].Corrupted)
		}
		fmt.Fprintf(&b, "ch %-5d %24s   %14s\n", row.Channel, paperCell,
			fmt.Sprintf("%3d / %d / %d", row.Valid, row.Corrupted, row.NotReceived))
	}
	valid, corrupted, lost := r.Totals()
	total := valid + corrupted + lost
	lo, hi := r.ValidRateInterval()
	fmt.Fprintf(&b, "average valid: measured %.3f %% (95%% CI %.3f–%.3f %%)",
		100*float64(valid)/float64(total), 100*lo, 100*hi)
	if avg, ok := PaperAverageValid(r.Chip, r.Side); ok {
		fmt.Fprintf(&b, " (paper: %.3f %%)", avg)
	}
	b.WriteString("\n")
	return b.String()
}
