package experiment

import (
	"math"
	"testing"

	"wazabee/internal/chip"
)

// TestTable3ShapeMatchesPaper runs the full-scale experiment (100 frames
// per channel, both chips, both sides) and asserts the qualitative claims
// of section V hold in the reproduction:
//
//  1. every average valid rate is within a few percent of the published
//     value,
//  2. the CC1352-R1 is at least as good as the nRF52832 on both sides,
//  3. the CC1352-R1 reception column contains no corrupted frames (its
//     quality gate drops marginal frames instead), and
//  4. the loss concentrates on the WiFi-overlapped channels.
func TestTable3ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Table III run")
	}
	cfg := DefaultConfig()

	results := make(map[string]*Result)
	for _, m := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		for _, side := range []Side{Reception, Transmission} {
			res, err := Run(cfg, m, side)
			if err != nil {
				t.Fatal(err)
			}
			results[m.Name+"/"+side.String()] = res

			paperAvg, ok := PaperAverageValid(m.Name, side)
			if !ok {
				t.Fatalf("no paper average for %s/%v", m.Name, side)
			}
			measured := 100 * res.ValidRate()
			if math.Abs(measured-paperAvg) > 3 {
				t.Errorf("%s/%v average valid = %.2f %%, paper %.2f %% (tolerance 3)\n%s",
					m.Name, side, measured, paperAvg, FormatComparison(res))
			}
		}
	}

	// The qualitative claim is that the CC1352-R1 is not systematically
	// worse than the nRF52832. Both columns share every noise draw (trial
	// seeds depend only on seed/channel/frame, not on the chip), so the
	// comparison is paired — but a paired tie can still land one frame
	// either way. Allow that jitter (3 of 1600 frames) instead of
	// asserting a strict inequality on a coin-flip margin.
	const orderingTolerance = 3.0 / 1600
	for _, side := range []Side{Reception, Transmission} {
		nrf := results["nRF52832/"+side.String()]
		cc := results["CC1352-R1/"+side.String()]
		if cc.ValidRate()+orderingTolerance < nrf.ValidRate() {
			t.Errorf("%v: CC1352-R1 (%.4f) worse than nRF52832 (%.4f), paper ordering violated",
				side, cc.ValidRate(), nrf.ValidRate())
		}
	}

	// CC1352-R1 reception: no corruption, like the paper's column.
	_, ccCorr, _ := results["CC1352-R1/reception"].Totals()
	if ccCorr > 2 {
		t.Errorf("CC1352-R1 reception shows %d corrupted frames, paper shows none", ccCorr)
	}

	// Losses concentrate on WiFi-overlapped channels.
	overlapped := map[int]bool{16: true, 17: true, 18: true, 19: true, 21: true, 22: true, 23: true, 24: true}
	for key, res := range results {
		lossOn, lossOff := 0, 0
		for _, row := range res.Rows {
			loss := row.Corrupted + row.NotReceived
			if overlapped[row.Channel] {
				lossOn += loss
			} else {
				lossOff += loss
			}
		}
		if lossOn <= lossOff {
			t.Errorf("%s: WiFi-overlapped loss (%d) not above clean-channel loss (%d)", key, lossOn, lossOff)
		}
	}
}
