package experiment

import (
	"testing"

	"wazabee/internal/chip"
)

func TestRunSweepValidation(t *testing.T) {
	cfg := DefaultSweepConfig()
	cfg.SNRs = nil
	if _, err := RunSweep(cfg, chip.NRF52832(), Reception); err == nil {
		t.Error("expected error for empty SNR list")
	}
	cfg = DefaultSweepConfig()
	if _, err := RunSweep(cfg, chip.NRF52832(), Side(9)); err == nil {
		t.Error("expected error for invalid side")
	}
	cfg.Channel = 99
	if _, err := RunSweep(cfg, chip.NRF52832(), Reception); err == nil {
		t.Error("expected error for invalid channel")
	}
}

func TestSweepMonotoneShape(t *testing.T) {
	// PER must be high in the noise floor and (near) zero at high SNR,
	// with a knee in between — the waterfall every receiver exhibits.
	cfg := SweepConfig{
		SNRs:           []float64{0, 8, 16},
		FramesPerPoint: 12,
		SamplesPerChip: 8,
		Seed:           3,
		Channel:        14,
	}
	points, err := RunSweep(cfg, chip.CC1352R1(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].PER < 0.5 {
		t.Errorf("PER at 0 dB = %.2f, want ≥ 0.5 (below sensitivity)", points[0].PER)
	}
	if points[2].PER > 0.1 {
		t.Errorf("PER at 16 dB = %.2f, want ≤ 0.1", points[2].PER)
	}
	if points[2].PER > points[0].PER {
		t.Error("PER increased with SNR")
	}
}

func TestSweepTransmissionNeedsMoreSNRThanIdeal(t *testing.T) {
	// The Gaussian-filter approximation costs the transmission side
	// some sensitivity: at a mid-knee SNR the WazaBee TX (nRF52832,
	// m = 0.52) must show at least as many errors as the native O-QPSK
	// reception path at the same point.
	cfg := SweepConfig{
		SNRs:           []float64{7},
		FramesPerPoint: 30,
		SamplesPerChip: 8,
		Seed:           4,
		Channel:        14,
	}
	rx, err := RunSweep(cfg, chip.CC1352R1(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := RunSweep(cfg, chip.NRF52832(), Transmission)
	if err != nil {
		t.Fatal(err)
	}
	if tx[0].PER+0.05 < rx[0].PER {
		t.Errorf("WazaBee TX PER %.2f implausibly below native RX PER %.2f at the knee",
			tx[0].PER, rx[0].PER)
	}
}
