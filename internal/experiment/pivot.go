package experiment

import (
	"context"
	"fmt"

	"wazabee/internal/experiment/runner"
	"wazabee/internal/modsim"
	"wazabee/internal/obs"
)

// PivotableThreshold is the similarity score above which a modulation
// pair is considered practically pivotable (the WazaBee LE 2M / O-QPSK
// pair scores well above it; LE 1M collapses well below).
const PivotableThreshold = 0.6

// pivotClasses is the outcome class set of a pivot-scan trial.
var pivotClasses = []string{"pivotable", "marginal"}

// PivotScanConfig parameterises a Monte-Carlo pivotability survey.
type PivotScanConfig struct {
	// BurstsPerEntry is the number of random representative bursts each
	// catalogue entry is scored on.
	BurstsPerEntry int
	// SamplesPerSymbol is the oversampling factor.
	SamplesPerSymbol int
	// Workers bounds the Monte-Carlo worker pool; <= 0 means
	// runtime.GOMAXPROCS. Results do not depend on the value.
	Workers int
	// Checkpoint, when non-empty, persists completed trial shards to
	// this path for cancellation/resume.
	Checkpoint string
	// CIHalfWidth, when > 0, stops each entry once the 95% Wilson
	// half-width of its pivotable rate reaches this target.
	CIHalfWidth float64
	// Seed drives all randomness: each burst's score derives from
	// (Seed, entry name, burst index) alone.
	Seed int64
	// Obs, when non-nil, receives the scan's runner telemetry, merged in
	// when the scan completes. Nil merges into the process default
	// registry.
	Obs *obs.Registry
}

// DefaultPivotScanConfig surveys the catalogue on 32 bursts per entry.
func DefaultPivotScanConfig() PivotScanConfig {
	return PivotScanConfig{
		BurstsPerEntry:   32,
		SamplesPerSymbol: 8,
		Seed:             1,
	}
}

// PivotScanRow is one catalogue entry's Monte-Carlo survey result.
type PivotScanRow struct {
	Emulator string
	Target   string
	// Bursts is the number of random bursts scored (BurstsPerEntry,
	// unless adaptive stopping ended the entry early).
	Bursts int
	// MeanScore is the similarity score averaged over the bursts.
	MeanScore float64
	// PivotableRate is the fraction of bursts scoring at least
	// PivotableThreshold, with its 95% Wilson interval.
	PivotableRate float64
	PivotableLo   float64
	PivotableHi   float64
}

// RunPivotScan surveys the modsim catalogue against the 802.15.4 O-QPSK
// target over many random representative bursts on the sharded
// Monte-Carlo runner — where SurveyAgainstOQPSK scores one burst per
// entry, the scan distributes hundreds and reports the mean similarity
// and the fraction of bursts above PivotableThreshold with a 95% Wilson
// interval. Each burst's randomness derives from (Seed, entry, burst)
// alone, so results are bit-identical at any worker count.
func RunPivotScan(ctx context.Context, cfg PivotScanConfig) ([]PivotScanRow, error) {
	if cfg.BurstsPerEntry < 1 {
		return nil, fmt.Errorf("experiment: bursts per entry %d < 1", cfg.BurstsPerEntry)
	}
	tgt, err := modsim.OQPSKTarget(cfg.SamplesPerSymbol)
	if err != nil {
		return nil, err
	}
	catalogue := modsim.Catalogue()
	entryOf := make(map[string]modsim.CatalogueEntry, len(catalogue))
	points := make([]runner.Point, len(catalogue))
	for i, e := range catalogue {
		points[i] = runner.Point{Key: e.Name, Trials: cfg.BurstsPerEntry}
		entryOf[e.Name] = e
	}
	reg := obs.NewRegistry()
	spec := runner.Spec{
		Name:       "pivotscan",
		Seed:       cfg.Seed,
		Points:     points,
		Workers:    cfg.Workers,
		Classes:    pivotClasses,
		Checkpoint: cfg.Checkpoint,
		Obs:        reg,
	}
	if cfg.CIHalfWidth > 0 {
		spec.Stop = &runner.Stop{Class: "pivotable", HalfWidth: cfg.CIHalfWidth}
	}

	res, err := runner.Run(ctx, spec, func(ctx context.Context, seed int64, point runner.Point, burst int) (runner.Outcome, error) {
		ps, err := modsim.ScoreEntry(entryOf[point.Key], tgt, cfg.SamplesPerSymbol, seed)
		if err != nil {
			return runner.Outcome{}, err
		}
		class := "marginal"
		if ps.Score >= PivotableThreshold {
			class = "pivotable"
		}
		return runner.Outcome{Class: class, Value: ps.Score}, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]PivotScanRow, len(res.Points))
	for i, pr := range res.Points {
		row := PivotScanRow{
			Emulator:  pr.Point.Key,
			Target:    tgt.Name,
			Bursts:    pr.Trials,
			MeanScore: pr.Mean,
		}
		if est, ok := pr.Estimate("pivotable"); ok {
			row.PivotableRate = est.Rate
			row.PivotableLo, row.PivotableHi = est.Lo, est.Hi
		}
		out[i] = row
	}
	if err := obs.Or(cfg.Obs).Merge(reg); err != nil {
		return nil, err
	}
	return out, nil
}
