package experiment

import (
	"context"
	"fmt"
	"strconv"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/experiment/runner"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

// SweepMetric is the per-operating-point frame classification counter
// family of a PER sweep: labels chip, side, snr_db and class
// (valid | corrupted | lost).
const SweepMetric = "wazabee_sweep_frames_total"

// sweepCounter returns the classification counter of one sweep point.
func sweepCounter(reg *obs.Registry, model chip.Model, side Side, snrDB float64, class string) *obs.Counter {
	return reg.Counter(SweepMetric,
		"chip", model.Name,
		"side", side.String(),
		"snr_db", strconv.FormatFloat(snrDB, 'g', -1, 64),
		"class", class)
}

// sweepClasses is the outcome class set of a sweep trial.
var sweepClasses = []string{"valid", "corrupted", "lost"}

// sweepPointKey is the runner point key of one operating point; the
// 'g'/-1 format round-trips float64 exactly, so distinct SNRs always get
// distinct keys (and distinct trial seed streams).
func sweepPointKey(snrDB float64) string {
	return "snr" + strconv.FormatFloat(snrDB, 'g', -1, 64)
}

// SweepPoint is one operating point of a packet-error-rate sweep.
type SweepPoint struct {
	SNRdB float64
	// Frames is the number of frames the point measured (FramesPerPoint,
	// unless adaptive stopping ended the point early).
	Frames int
	// PER is the packet error rate (anything but a valid frame counts
	// as an error).
	PER float64
	// PERLo and PERHi bound PER with a 95% Wilson score interval.
	PERLo float64
	PERHi float64
	// CorruptedRate and LossRate split the errors by class.
	CorruptedRate float64
	LossRate      float64
}

// SweepConfig parameterises a PER-versus-SNR sweep, an extension beyond
// the paper's single operating point: it locates the sensitivity knee of
// each primitive and quantifies the Gaussian-approximation penalty of
// the transmission side.
type SweepConfig struct {
	// SNRs lists the operating points in dB.
	SNRs []float64
	// FramesPerPoint is the number of frames per operating point.
	FramesPerPoint int
	// SamplesPerChip is the oversampling factor.
	SamplesPerChip int
	// Workers bounds the Monte-Carlo worker pool; <= 0 means
	// runtime.GOMAXPROCS. Results do not depend on the value.
	Workers int
	// Checkpoint, when non-empty, persists completed trial shards to
	// this path for cancellation/resume.
	Checkpoint string
	// CIHalfWidth, when > 0, stops each operating point once the 95%
	// Wilson half-width of its PER reaches this target, instead of
	// always spending FramesPerPoint frames.
	CIHalfWidth float64
	// Seed drives all randomness: every frame's noise derives from
	// (Seed, SNR point, frame index) alone, so a point's result does not
	// depend on which other points the sweep contains or on their order.
	Seed int64
	// Channel is the Zigbee channel to run on.
	Channel int
	// Obs, when non-nil, receives the sweep's telemetry (per-point
	// classification counters plus pipeline metrics), merged in when the
	// sweep completes. Nil merges into the process default registry.
	Obs *obs.Registry
	// Fidelity selects the frame-delivery tier (zero means FidelityIQ);
	// see Config.Fidelity.
	Fidelity radio.Fidelity
}

// DefaultSweepConfig covers the interesting 0–14 dB region.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		SNRs:           []float64{0, 2, 4, 5, 6, 7, 8, 10, 12, 14},
		FramesPerPoint: 50,
		SamplesPerChip: 8,
		Seed:           1,
		Channel:        zigbee.DefaultChannel,
	}
}

// RunSweep measures PER versus SNR with a background context. See
// RunSweepContext.
func RunSweep(cfg SweepConfig, model chip.Model, side Side) ([]SweepPoint, error) {
	return RunSweepContext(context.Background(), cfg, model, side)
}

// RunSweepContext measures PER versus SNR for one chip model and side
// over a clean channel (no WiFi, no CFO — pure sensitivity) on the
// sharded Monte-Carlo runner. Each (SNR, frame) pair runs on its own
// freshly seeded medium, so a point's PER is a property of the point — it
// cannot shift when the SNR list is reordered, extended, or split across
// workers. The per-point tallies live as counters on the run's registry;
// the returned points carry 95% Wilson intervals on PER.
func RunSweepContext(ctx context.Context, cfg SweepConfig, model chip.Model, side Side) ([]SweepPoint, error) {
	if len(cfg.SNRs) == 0 || cfg.FramesPerPoint < 1 {
		return nil, fmt.Errorf("experiment: empty sweep configuration")
	}
	if side != Reception && side != Transmission {
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
	freq, err := ieee802154.ChannelFrequencyMHz(cfg.Channel)
	if err != nil {
		return nil, err
	}
	// Validate the chip/side combination once up front, so a
	// misconfigured model is an error rather than a 100% loss column.
	switch side {
	case Reception:
		_, err = model.NewWazaBeeReceiver(cfg.SamplesPerChip)
	case Transmission:
		_, err = model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
	}
	if err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	points := make([]runner.Point, len(cfg.SNRs))
	snrOf := make(map[string]float64, len(cfg.SNRs))
	for i, snr := range cfg.SNRs {
		key := sweepPointKey(snr)
		points[i] = runner.Point{Key: key, Trials: cfg.FramesPerPoint}
		snrOf[key] = snr
	}
	spec := runner.Spec{
		Name:       "persweep/" + model.Name + "/" + side.String(),
		Seed:       cfg.Seed,
		Points:     points,
		Workers:    cfg.Workers,
		Classes:    sweepClasses,
		Checkpoint: cfg.Checkpoint,
		Obs:        reg,
	}
	if cfg.CIHalfWidth > 0 {
		// Wilson intervals of p and 1-p mirror each other with equal
		// width, so stopping on the valid rate's half-width is exactly
		// stopping on the PER half-width.
		spec.Stop = &runner.Stop{Class: "valid", HalfWidth: cfg.CIHalfWidth}
	}

	res, err := runner.Run(ctx, spec, func(ctx context.Context, seed int64, point runner.Point, frame int) (runner.Outcome, error) {
		class, err := sweepTrial(cfg, reg, model, side, freq, snrOf[point.Key], seed, frame)
		if err != nil {
			return runner.Outcome{}, err
		}
		return runner.Outcome{Class: class}, nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]SweepPoint, len(res.Points))
	for i, pr := range res.Points {
		snr := snrOf[pr.Point.Key]
		for _, class := range sweepClasses {
			sweepCounter(reg, model, side, snr, class).Add(uint64(pr.Counts[class]))
		}
		n := float64(pr.Trials)
		point := SweepPoint{
			SNRdB:         snr,
			Frames:        pr.Trials,
			CorruptedRate: float64(pr.Counts["corrupted"]) / n,
			LossRate:      float64(pr.Counts["lost"]) / n,
		}
		point.PER = point.CorruptedRate + point.LossRate
		point.PERLo, point.PERHi = runner.Wilson(pr.Counts["corrupted"]+pr.Counts["lost"], pr.Trials)
		out[i] = point
	}
	if err := obs.Or(cfg.Obs).Merge(reg); err != nil {
		return nil, err
	}
	return out, nil
}

// sweepTrial measures one frame at one operating point on a medium
// seeded from the trial's derived seed alone, routed through
// radio.Channel at the configured fidelity tier (a clean channel: no
// WiFi, no CFO — pure sensitivity).
func sweepTrial(cfg SweepConfig, reg *obs.Registry, model chip.Model, side Side, freq, snr float64, seed int64, frame int) (string, error) {
	medium, err := radio.NewMedium(float64(cfg.SamplesPerChip)*ieee802154.ChipRate, seed)
	if err != nil {
		return "", err
	}
	medium.Obs = reg

	frameHdr := ieee802154.NewDataFrame(uint8(frame), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(uint16(frame)), false)
	psdu, err := frameHdr.Encode()
	if err != nil {
		return "", err
	}

	var rxNF float64
	switch side {
	case Reception:
		rxNF = model.NoiseFigureDB
	case Transmission:
		rxNF = chip.RZUSBStick().NoiseFigureDB
	}
	link := radio.Link{
		SNRdB:       snr - rxNF,
		LeadSamples: 30 * cfg.SamplesPerChip,
		LagSamples:  15 * cfg.SamplesPerChip,
	}

	fid := cfg.Fidelity
	if fid == 0 {
		fid = radio.FidelityIQ
	}
	var ch radio.Channel
	if fid == radio.FidelityIQ {
		ep, eperr := sweepEndpoints(cfg, reg, model, side)
		if eperr != nil {
			return "", eperr
		}
		ch, err = medium.Channel(fid, radio.ChannelOptions{Endpoints: ep})
	} else {
		ch, err = medium.Channel(fid, radio.ChannelOptions{
			Profile: radio.CalProfileName(model.Name, side.String()),
		})
	}
	if err != nil {
		return "", err
	}

	out, err := ch.Deliver(radio.FrameSpec{
		PSDU:      psdu,
		TxFreqMHz: freq,
		RxFreqMHz: freq,
		Link:      link,
		Seed:      uint64(seed),
	})
	if err != nil {
		return "", err
	}
	switch {
	case out.DecodeErr != nil:
		return "lost", nil
	case out.Valid:
		return "valid", nil
	default:
		return "corrupted", nil
	}
}

// sweepEndpoints builds the IQ-tier modem pair of one sweep trial.
func sweepEndpoints(cfg SweepConfig, reg *obs.Registry, model chip.Model, side Side) (*radio.IQEndpoints, error) {
	zigbeePHY, err := chip.RZUSBStick().NewZigbeePHY(cfg.SamplesPerChip)
	if err != nil {
		return nil, err
	}
	zigbeePHY.Obs = reg
	modulate := func(phyMod func(*ieee802154.PPDU) (dsp.IQ, error)) func([]byte) (dsp.IQ, error) {
		return func(psdu []byte) (dsp.IQ, error) {
			ppdu, err := ieee802154.NewPPDU(psdu)
			if err != nil {
				return nil, err
			}
			return phyMod(ppdu)
		}
	}
	switch side {
	case Reception:
		rx, err := model.NewWazaBeeReceiver(cfg.SamplesPerChip)
		if err != nil {
			return nil, err
		}
		rx.Obs = reg
		return &radio.IQEndpoints{
			Modulate: modulate(zigbeePHY.Modulate),
			Demodulate: func(capture dsp.IQ) ([]byte, error) {
				dem, err := rx.Receive(capture)
				if err != nil {
					return nil, err
				}
				return dem.PPDU.PSDU, nil
			},
		}, nil
	case Transmission:
		tx, err := model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
		if err != nil {
			return nil, err
		}
		tx.Obs = reg
		return &radio.IQEndpoints{
			Modulate: modulate(tx.Modulate),
			Demodulate: func(capture dsp.IQ) ([]byte, error) {
				dem, err := zigbeePHY.Demodulate(capture)
				if err != nil {
					return nil, err
				}
				return dem.PPDU.PSDU, nil
			},
		}, nil
	default:
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
}
