package experiment

import (
	"fmt"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

// SweepPoint is one operating point of a packet-error-rate sweep.
type SweepPoint struct {
	SNRdB float64
	// PER is the packet error rate (anything but a valid frame counts
	// as an error).
	PER float64
	// CorruptedRate and LossRate split the errors by class.
	CorruptedRate float64
	LossRate      float64
}

// SweepConfig parameterises a PER-versus-SNR sweep, an extension beyond
// the paper's single operating point: it locates the sensitivity knee of
// each primitive and quantifies the Gaussian-approximation penalty of
// the transmission side.
type SweepConfig struct {
	// SNRs lists the operating points in dB.
	SNRs []float64
	// FramesPerPoint is the number of frames per operating point.
	FramesPerPoint int
	// SamplesPerChip is the oversampling factor.
	SamplesPerChip int
	// Seed drives all randomness.
	Seed int64
	// Channel is the Zigbee channel to run on.
	Channel int
}

// DefaultSweepConfig covers the interesting 0–14 dB region.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		SNRs:           []float64{0, 2, 4, 5, 6, 7, 8, 10, 12, 14},
		FramesPerPoint: 50,
		SamplesPerChip: 8,
		Seed:           1,
		Channel:        zigbee.DefaultChannel,
	}
}

// RunSweep measures PER versus SNR for one chip model and side over a
// clean channel (no WiFi, no CFO — pure sensitivity).
func RunSweep(cfg SweepConfig, model chip.Model, side Side) ([]SweepPoint, error) {
	if len(cfg.SNRs) == 0 || cfg.FramesPerPoint < 1 {
		return nil, fmt.Errorf("experiment: empty sweep configuration")
	}
	if side != Reception && side != Transmission {
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
	freq, err := ieee802154.ChannelFrequencyMHz(cfg.Channel)
	if err != nil {
		return nil, err
	}
	stick := chip.RZUSBStick()
	zigbeePHY, err := stick.NewZigbeePHY(cfg.SamplesPerChip)
	if err != nil {
		return nil, err
	}
	medium, err := radio.NewMedium(float64(cfg.SamplesPerChip)*ieee802154.ChipRate, cfg.Seed)
	if err != nil {
		return nil, err
	}

	out := make([]SweepPoint, 0, len(cfg.SNRs))
	for _, snr := range cfg.SNRs {
		point := SweepPoint{SNRdB: snr}
		corrupted, lost := 0, 0
		for i := 0; i < cfg.FramesPerPoint; i++ {
			frame := ieee802154.NewDataFrame(uint8(i), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
				zigbee.DefaultSensor, zigbee.SensorPayload(uint16(i)), false)
			psdu, err := frame.Encode()
			if err != nil {
				return nil, err
			}
			ppdu, err := ieee802154.NewPPDU(psdu)
			if err != nil {
				return nil, err
			}

			var sig dsp.IQ
			var rxNF float64
			switch side {
			case Reception:
				sig, err = zigbeePHY.Modulate(ppdu)
				rxNF = model.NoiseFigureDB
			case Transmission:
				tx, terr := model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
				if terr != nil {
					return nil, terr
				}
				sig, err = tx.Modulate(ppdu)
				rxNF = stick.NoiseFigureDB
			}
			if err != nil {
				return nil, err
			}
			link := radio.Link{
				SNRdB:       snr - rxNF,
				LeadSamples: 30 * cfg.SamplesPerChip,
				LagSamples:  15 * cfg.SamplesPerChip,
			}
			capture, err := medium.Deliver(sig, freq, freq, link)
			if err != nil {
				return nil, err
			}

			classify(model, zigbeePHY, side, cfg.SamplesPerChip, capture, psdu, &corrupted, &lost)
		}
		n := float64(cfg.FramesPerPoint)
		point.CorruptedRate = float64(corrupted) / n
		point.LossRate = float64(lost) / n
		point.PER = point.CorruptedRate + point.LossRate
		out = append(out, point)
	}
	return out, nil
}

func classify(model chip.Model, zigbeePHY *ieee802154.PHY, side Side, sps int, capture dsp.IQ, want []byte, corrupted, lost *int) {
	var psdu []byte
	switch side {
	case Reception:
		rx, err := model.NewWazaBeeReceiver(sps)
		if err != nil {
			*lost++
			return
		}
		dem, err := rx.Receive(capture)
		if err != nil {
			*lost++
			return
		}
		psdu = dem.PPDU.PSDU
	case Transmission:
		dem, err := zigbeePHY.Demodulate(capture)
		if err != nil {
			*lost++
			return
		}
		psdu = dem.PPDU.PSDU
	}
	if len(psdu) != len(want) {
		*corrupted++
		return
	}
	for i := range want {
		if psdu[i] != want[i] {
			*corrupted++
			return
		}
	}
}
