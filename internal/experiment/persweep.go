package experiment

import (
	"fmt"
	"strconv"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

// SweepMetric is the per-operating-point frame classification counter
// family of a PER sweep: labels chip, side, snr_db and class
// (valid | corrupted | lost).
const SweepMetric = "wazabee_sweep_frames_total"

// sweepCounter returns the classification counter of one sweep point.
func sweepCounter(reg *obs.Registry, model chip.Model, side Side, snrDB float64, class string) *obs.Counter {
	return reg.Counter(SweepMetric,
		"chip", model.Name,
		"side", side.String(),
		"snr_db", strconv.FormatFloat(snrDB, 'g', -1, 64),
		"class", class)
}

// SweepPoint is one operating point of a packet-error-rate sweep.
type SweepPoint struct {
	SNRdB float64
	// PER is the packet error rate (anything but a valid frame counts
	// as an error).
	PER float64
	// CorruptedRate and LossRate split the errors by class.
	CorruptedRate float64
	LossRate      float64
}

// SweepConfig parameterises a PER-versus-SNR sweep, an extension beyond
// the paper's single operating point: it locates the sensitivity knee of
// each primitive and quantifies the Gaussian-approximation penalty of
// the transmission side.
type SweepConfig struct {
	// SNRs lists the operating points in dB.
	SNRs []float64
	// FramesPerPoint is the number of frames per operating point.
	FramesPerPoint int
	// SamplesPerChip is the oversampling factor.
	SamplesPerChip int
	// Seed drives all randomness.
	Seed int64
	// Channel is the Zigbee channel to run on.
	Channel int
	// Obs, when non-nil, receives the sweep's telemetry (per-point
	// classification counters plus pipeline metrics), merged in when the
	// sweep completes. Nil merges into the process default registry.
	Obs *obs.Registry
}

// DefaultSweepConfig covers the interesting 0–14 dB region.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		SNRs:           []float64{0, 2, 4, 5, 6, 7, 8, 10, 12, 14},
		FramesPerPoint: 50,
		SamplesPerChip: 8,
		Seed:           1,
		Channel:        zigbee.DefaultChannel,
	}
}

// RunSweep measures PER versus SNR for one chip model and side over a
// clean channel (no WiFi, no CFO — pure sensitivity). The per-point
// tallies live as counters on the run's registry; the returned points
// are read back from them.
func RunSweep(cfg SweepConfig, model chip.Model, side Side) ([]SweepPoint, error) {
	if len(cfg.SNRs) == 0 || cfg.FramesPerPoint < 1 {
		return nil, fmt.Errorf("experiment: empty sweep configuration")
	}
	if side != Reception && side != Transmission {
		return nil, fmt.Errorf("experiment: invalid side %d", int(side))
	}
	freq, err := ieee802154.ChannelFrequencyMHz(cfg.Channel)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	stick := chip.RZUSBStick()
	zigbeePHY, err := stick.NewZigbeePHY(cfg.SamplesPerChip)
	if err != nil {
		return nil, err
	}
	zigbeePHY.Obs = reg
	medium, err := radio.NewMedium(float64(cfg.SamplesPerChip)*ieee802154.ChipRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	medium.Obs = reg

	out := make([]SweepPoint, 0, len(cfg.SNRs))
	for _, snr := range cfg.SNRs {
		corrupted := sweepCounter(reg, model, side, snr, "corrupted")
		lost := sweepCounter(reg, model, side, snr, "lost")
		// Touch the valid counter so a perfect operating point still
		// exports a full series triple.
		valid := sweepCounter(reg, model, side, snr, "valid")
		for i := 0; i < cfg.FramesPerPoint; i++ {
			frame := ieee802154.NewDataFrame(uint8(i), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
				zigbee.DefaultSensor, zigbee.SensorPayload(uint16(i)), false)
			psdu, err := frame.Encode()
			if err != nil {
				return nil, err
			}
			ppdu, err := ieee802154.NewPPDU(psdu)
			if err != nil {
				return nil, err
			}

			var sig dsp.IQ
			var rxNF float64
			switch side {
			case Reception:
				sig, err = zigbeePHY.Modulate(ppdu)
				rxNF = model.NoiseFigureDB
			case Transmission:
				tx, terr := model.NewWazaBeeTransmitter(cfg.SamplesPerChip)
				if terr != nil {
					return nil, terr
				}
				tx.Obs = reg
				sig, err = tx.Modulate(ppdu)
				rxNF = stick.NoiseFigureDB
			}
			if err != nil {
				return nil, err
			}
			link := radio.Link{
				SNRdB:       snr - rxNF,
				LeadSamples: 30 * cfg.SamplesPerChip,
				LagSamples:  15 * cfg.SamplesPerChip,
			}
			capture, err := medium.Deliver(sig, freq, freq, link)
			if err != nil {
				return nil, err
			}

			classify(model, zigbeePHY, side, cfg.SamplesPerChip, reg, capture, psdu, valid, corrupted, lost)
		}
		n := float64(cfg.FramesPerPoint)
		point := SweepPoint{
			SNRdB:         snr,
			CorruptedRate: float64(corrupted.Value()) / n,
			LossRate:      float64(lost.Value()) / n,
		}
		point.PER = point.CorruptedRate + point.LossRate
		out = append(out, point)
	}
	if err := obs.Or(cfg.Obs).Merge(reg); err != nil {
		return nil, err
	}
	return out, nil
}

func classify(model chip.Model, zigbeePHY *ieee802154.PHY, side Side, sps int, reg *obs.Registry, capture dsp.IQ, want []byte, valid, corrupted, lost *obs.Counter) {
	var psdu []byte
	switch side {
	case Reception:
		rx, err := model.NewWazaBeeReceiver(sps)
		if err != nil {
			lost.Inc()
			return
		}
		rx.Obs = reg
		dem, err := rx.Receive(capture)
		if err != nil {
			lost.Inc()
			return
		}
		psdu = dem.PPDU.PSDU
	case Transmission:
		dem, err := zigbeePHY.Demodulate(capture)
		if err != nil {
			lost.Inc()
			return
		}
		psdu = dem.PPDU.PSDU
	}
	if len(psdu) != len(want) {
		corrupted.Inc()
		return
	}
	for i := range want {
		if psdu[i] != want[i] {
			corrupted.Inc()
			return
		}
	}
	valid.Inc()
}
