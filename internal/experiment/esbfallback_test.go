package experiment

import (
	"testing"

	"wazabee/internal/chip"
)

// TestESBFallbackDegradedButSufficient checks the scenario B claim about
// the nRF51822: using Enhanced ShockBurst at 2 Mbit/s instead of LE 2M
// "has a direct impact on the reception quality, but it is sufficient to
// successfully conduct a complex active attack". The model's reception
// must be measurably worse than the nRF52832's yet still usable.
func TestESBFallbackDegradedButSufficient(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FramesPerChannel = 12
	cfg.WiFi = false
	cfg.SNRdB = 9 // near the knee, where front-end quality shows

	modern, err := Run(cfg, chip.NRF52832(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := Run(cfg, chip.NRF51822(), Reception)
	if err != nil {
		t.Fatal(err)
	}
	if tracker.ValidRate() >= modern.ValidRate() {
		t.Errorf("nRF51822 (%.3f) not degraded versus nRF52832 (%.3f)",
			tracker.ValidRate(), modern.ValidRate())
	}
	if tracker.ValidRate() < 0.5 {
		t.Errorf("nRF51822 valid rate %.3f too low to run scenario B", tracker.ValidRate())
	}
}
