package chip

import (
	"testing"

	"wazabee/internal/ble"
)

func TestModelCatalogue(t *testing.T) {
	tests := []struct {
		model     Model
		wantMode  ble.Mode
		arbitrary bool
	}{
		{NRF52832(), ble.LE2M, true},
		{CC1352R1(), ble.LE2M, true},
		{NRF51822(), ble.ESB2M, true},
	}
	for _, tt := range tests {
		t.Run(tt.model.Name, func(t *testing.T) {
			if tt.model.Mode != tt.wantMode {
				t.Errorf("mode = %v, want %v", tt.model.Mode, tt.wantMode)
			}
			if tt.model.ArbitraryFrequency != tt.arbitrary {
				t.Errorf("arbitrary frequency = %v, want %v", tt.model.ArbitraryFrequency, tt.arbitrary)
			}
			if tt.model.ModulationIndex < 0.45 || tt.model.ModulationIndex > 0.55 {
				t.Errorf("modulation index %g outside BLE tolerance", tt.model.ModulationIndex)
			}
		})
	}
}

func TestCC1352BetterAnalogThanNRF52832(t *testing.T) {
	// Table III shows the CC1352-R1 receiving more stably than the
	// nRF52832; the models must preserve that ordering.
	if CC1352R1().NoiseFigureDB >= NRF52832().NoiseFigureDB {
		t.Error("CC1352-R1 model is not cleaner than nRF52832")
	}
	if NRF51822().NoiseFigureDB <= NRF52832().NoiseFigureDB {
		t.Error("nRF51822 ESB fallback should be the worst receiver")
	}
}

func TestCanTune(t *testing.T) {
	// The paper's benchmark chips reach every Zigbee channel directly.
	for _, m := range []Model{NRF52832(), CC1352R1()} {
		for ch := 11; ch <= 26; ch++ {
			if !m.CanTune(ch) {
				t.Errorf("%s cannot tune channel %d", m.Name, ch)
			}
		}
		if m.CanTune(27) || m.CanTune(5) {
			t.Errorf("%s tunes invalid Zigbee channels", m.Name)
		}
	}
	// A chip restricted to BLE channel indices reaches exactly the
	// Table II subset.
	restricted := NRF52832()
	restricted.ArbitraryFrequency = false
	wantTunable := map[int]bool{12: true, 14: true, 16: true, 18: true, 20: true, 22: true, 24: true, 26: true}
	for ch := 11; ch <= 26; ch++ {
		if got := restricted.CanTune(ch); got != wantTunable[ch] {
			t.Errorf("restricted CanTune(%d) = %v, want %v", ch, got, wantTunable[ch])
		}
	}
}

func TestNewWazaBeePrimitives(t *testing.T) {
	for _, m := range []Model{NRF52832(), CC1352R1(), NRF51822()} {
		if _, err := m.NewWazaBeeTransmitter(8); err != nil {
			t.Errorf("%s transmitter: %v", m.Name, err)
		}
		rx, err := m.NewWazaBeeReceiver(8)
		if err != nil {
			t.Errorf("%s receiver: %v", m.Name, err)
			continue
		}
		if rx.MaxPatternErrors != m.SyncTolerance {
			t.Errorf("%s sync tolerance = %d, want %d", m.Name, rx.MaxPatternErrors, m.SyncTolerance)
		}
	}
}

func TestNonBLEChipHasNoPrimitives(t *testing.T) {
	stick := RZUSBStick()
	if _, err := stick.NewWazaBeeTransmitter(8); err == nil {
		t.Error("RZUSBStick must not offer a BLE transmitter")
	}
	if _, err := stick.NewZigbeePHY(8); err != nil {
		t.Errorf("RZUSBStick Zigbee PHY: %v", err)
	}
}

func TestCRCLockedChipHasNoReceiver(t *testing.T) {
	m := NRF52832()
	m.CanDisableCRC = false
	if _, err := m.NewWazaBeeReceiver(8); err == nil {
		t.Error("a chip that cannot disable CRC must not offer the reception primitive")
	}
}

func TestAndroidControllerConstraints(t *testing.T) {
	phone := AndroidController()
	// The scenario A asymmetry: transmission possible, reception not.
	if _, err := phone.NewWazaBeeTransmitter(8); err != nil {
		t.Errorf("phone transmitter: %v", err)
	}
	if _, err := phone.NewWazaBeeReceiver(8); err == nil {
		t.Error("phone must not offer the reception primitive (CRC drop in controller)")
	}
	// And it reaches only the Table II subset, through CSA#2.
	if phone.CanTune(11) {
		t.Error("phone cannot tune Zigbee channel 11 (no BLE equivalent)")
	}
	if !phone.CanTune(14) {
		t.Error("phone should reach Zigbee channel 14 via BLE channel 8")
	}
}

func TestCC2652RIsFullyCapable(t *testing.T) {
	m := CC2652R()
	if _, err := m.NewWazaBeeTransmitter(8); err != nil {
		t.Errorf("CC2652R transmitter: %v", err)
	}
	if _, err := m.NewWazaBeeReceiver(8); err != nil {
		t.Errorf("CC2652R receiver: %v", err)
	}
}
