// Package chip models the radio front ends of the hardware used in the
// paper's experiments: the two BLE chips the attack was implemented on
// (Nordic nRF52832, Texas Instruments CC1352-R1), the nRF51822 of the BLE
// tracker in scenario B, and the Atmel RZUSBStick 802.15.4 dongle that
// plays the legitimate Zigbee endpoint.
//
// A model captures what matters to the attack: which PHY modes the chip
// offers, how flexible its frequency synthesizer is, whether whitening and
// CRC checking can be bypassed, and the analog quality (noise figure,
// crystal tolerance) that separates the two implementations in Table III.
package chip

import (
	"fmt"

	"wazabee/internal/ble"
	"wazabee/internal/core"
	"wazabee/internal/ieee802154"
)

// Model describes one radio front end.
type Model struct {
	// Name is the part number used in reports.
	Name string
	// Mode is the GFSK mode the WazaBee implementation uses on this
	// chip (LE 2M where available, ESB 2M on the nRF51822).
	Mode ble.Mode
	// ModulationIndex is the chip's GFSK modulation index (the BLE
	// specification tolerates 0.45..0.55).
	ModulationIndex float64
	// BT is the Gaussian filter bandwidth-time product.
	BT float64
	// NoiseFigureDB degrades the link SNR at this chip's receiver; it
	// encodes the analog sensitivity difference between front ends.
	NoiseFigureDB float64
	// CrystalPPM is the frequency tolerance of the chip's reference
	// crystal; TX/RX pairs see a CFO drawn from it.
	CrystalPPM float64
	// ArbitraryFrequency reports whether the radio API tunes to any
	// 2.4 GHz channel raster frequency (most BLE 5 chips do, including
	// both chips of the paper's benchmarks) or only to BLE channel
	// indices, in which case the Table II subset applies (the
	// smartphone of scenario A is the extreme case — it cannot pick
	// even a BLE channel directly).
	ArbitraryFrequency bool
	// CanDisableWhitening and CanDisableCRC report the register-level
	// escape hatches section IV-D requires.
	CanDisableWhitening bool
	CanDisableCRC       bool
	// SyncTolerance is the number of bit errors the chip's hardware
	// address correlator accepts.
	SyncTolerance int
	// InterferenceRejectionDB is the receiver's blocking/selectivity
	// margin against co-channel interference bursts; the CC1352-R1's
	// stronger front end is what keeps its Table III columns stable
	// under the lab's WiFi traffic.
	InterferenceRejectionDB float64
	// QualityThreshold is the despreading quality gate (worst tolerated
	// per-symbol chip distance). A strict gate drops marginal frames
	// instead of delivering them corrupted, which is why the CC1352-R1
	// column of Table III shows losses but no corruption.
	QualityThreshold int
}

// Models used by the reproduced experiments. The analog figures are
// calibrated so the simulated Table III reproduces the paper's shape
// (CC1352-R1 slightly cleaner than nRF52832; nRF51822 noticeably worse in
// ESB fallback mode).
func NRF52832() Model {
	return Model{
		Name:                "nRF52832",
		Mode:                ble.LE2M,
		ModulationIndex:     0.52, // within the BLE 0.45..0.55 band, slightly off nominal
		BT:                  0.5,
		NoiseFigureDB:       3.0,
		CrystalPPM:          30,
		ArbitraryFrequency:  true,
		CanDisableWhitening: true,
		CanDisableCRC:       true,
		SyncTolerance:       2,
		QualityThreshold:    13,
	}
}

func CC1352R1() Model {
	return Model{
		Name:                    "CC1352-R1",
		Mode:                    ble.LE2M,
		ModulationIndex:         0.5,
		BT:                      0.5,
		NoiseFigureDB:           1.5,
		CrystalPPM:              20,
		ArbitraryFrequency:      true,
		CanDisableWhitening:     true,
		CanDisableCRC:           true,
		SyncTolerance:           3,
		InterferenceRejectionDB: 6,
		QualityThreshold:        8,
	}
}

func NRF51822() Model {
	return Model{
		Name:                "nRF51822",
		Mode:                ble.ESB2M,
		ModulationIndex:     0.5,
		BT:                  0.5,
		NoiseFigureDB:       6.0,
		CrystalPPM:          40,
		ArbitraryFrequency:  true,
		CanDisableWhitening: true,
		CanDisableCRC:       true,
		SyncTolerance:       2,
		QualityThreshold:    13,
	}
}

// CC2652R is the Texas Instruments multiprotocol chip the paper's
// related work cites as natively supporting both technologies — on it
// the "pivot" needs no trick at all, which is why WazaBee matters for
// the single-protocol chips above.
func CC2652R() Model {
	return Model{
		Name:                    "CC2652R",
		Mode:                    ble.LE2M,
		ModulationIndex:         0.5,
		BT:                      0.5,
		NoiseFigureDB:           1.5,
		CrystalPPM:              20,
		ArbitraryFrequency:      true,
		CanDisableWhitening:     true,
		CanDisableCRC:           true,
		SyncTolerance:           3,
		InterferenceRejectionDB: 6,
		QualityThreshold:        8,
	}
}

// AndroidController models the smartphone of scenario A: a BLE 5
// controller reachable only through the host API. It cannot tune
// channels (CSA#2 does), cannot bypass whitening (the attacker
// pre-compensates) and cannot disable CRC checking — which is exactly
// why the phone has a transmission path but no reception primitive.
func AndroidController() Model {
	return Model{
		Name:            "Android BLE controller",
		Mode:            ble.LE2M,
		ModulationIndex: 0.5,
		BT:              0.5,
		NoiseFigureDB:   3.0,
		CrystalPPM:      40,
		SyncTolerance:   2,
	}
}

// RZUSBStick is the legitimate 802.15.4 transceiver of the experimental
// setup (it is not a BLE chip; its Mode is zero).
func RZUSBStick() Model {
	return Model{
		Name:                    "RZUSBStick",
		NoiseFigureDB:           1.0,
		CrystalPPM:              25,
		InterferenceRejectionDB: 2,
		QualityThreshold:        14,
	}
}

// CanTune reports whether the chip can operate on the given Zigbee
// channel: chips with an arbitrary synthesizer reach all 16 channels,
// others only the 8 channels sharing a BLE centre frequency (Table II).
func (m Model) CanTune(zigbeeChannel int) bool {
	if _, err := ieee802154.ChannelFrequencyMHz(zigbeeChannel); err != nil {
		return false
	}
	if m.ArbitraryFrequency {
		return true
	}
	_, err := core.BLEChannelFor(zigbeeChannel)
	return err == nil
}

// NewWazaBeeTransmitter builds the WazaBee transmission primitive on this
// chip's radio at the given oversampling factor.
func (m Model) NewWazaBeeTransmitter(samplesPerSymbol int) (*core.Transmitter, error) {
	phy, err := m.newPHY(samplesPerSymbol)
	if err != nil {
		return nil, err
	}
	return core.NewTransmitter(phy)
}

// NewWazaBeeReceiver builds the WazaBee reception primitive. It fails on
// chips that cannot disable CRC checking, because invalid-CRC frames are
// dropped in the controller before the host sees them (the scenario A
// limitation).
func (m Model) NewWazaBeeReceiver(samplesPerSymbol int) (*core.Receiver, error) {
	if !m.CanDisableCRC {
		return nil, fmt.Errorf("chip: %s cannot disable CRC checking; reception primitive unavailable", m.Name)
	}
	phy, err := m.newPHY(samplesPerSymbol)
	if err != nil {
		return nil, err
	}
	rx, err := core.NewReceiver(phy)
	if err != nil {
		return nil, err
	}
	rx.MaxPatternErrors = m.SyncTolerance
	if m.QualityThreshold > 0 {
		rx.MaxChipDistance = m.QualityThreshold
	}
	return rx, nil
}

// NewZigbeePHY builds a native O-QPSK modem (for the RZUSBStick role).
func (m Model) NewZigbeePHY(samplesPerChip int) (*ieee802154.PHY, error) {
	phy, err := ieee802154.NewPHY(samplesPerChip)
	if err != nil {
		return nil, err
	}
	if m.QualityThreshold > 0 {
		phy.MaxChipDistance = m.QualityThreshold
	}
	return phy, nil
}

func (m Model) newPHY(samplesPerSymbol int) (*ble.PHY, error) {
	if m.Mode == 0 {
		return nil, fmt.Errorf("chip: %s has no BLE-family radio", m.Name)
	}
	return ble.NewPHYWithShaping(m.Mode, samplesPerSymbol, m.ModulationIndex, m.BT)
}
