// Package modsim implements the metric the paper's conclusion calls for:
// "Defining a metric to measure such similarities could be useful to
// anticipate which protocols could be diverted to other protocols."
//
// The metric asks: how well can modulation A reproduce the waveform of
// modulation B, as seen by B's own receiver? Both are reduced to their
// per-symbol phase increments on B's decision grid (a noncoherent FSK
// receiver integrates instantaneous frequency over one symbol period and
// thresholds the result). The emulator picks, per one of its symbol
// periods, the input symbol whose frequency sign best tracks the target,
// modulates it, and the score is
//
//	1 − RMSE(Δφ_A, Δφ_B) / (π/2)
//
// over the best time alignment, clipped to [0, 1]. The error is measured
// against the ±π/2 per-symbol decision quantum of the MSK family, so the
// score reads as remaining demodulation margin: BLE LE 2M against
// 802.15.4 O-QPSK stays near 1 (pivotable, the WazaBee result); halving
// the deviation halves the margin (≈ 0.5); rate mismatch (LE 1M) or
// deviation overshoot collapse it.
package modsim

import (
	"fmt"
	"math"
	"math/rand"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
)

// Emulator is the attacker-controlled modulation (the radio being
// diverted).
type Emulator struct {
	// Name identifies the modulation in reports.
	Name string
	// SymbolPeriod is the symbol duration in samples.
	SymbolPeriod int
	// Modulate produces the waveform for a binary input sequence.
	Modulate func(bits bitstream.Bits) (dsp.IQ, error)
}

// Target is the victim modulation to emulate.
type Target struct {
	// Name identifies the modulation in reports.
	Name string
	// SymbolPeriod is the decision-grid period of the target's
	// receiver, in samples.
	SymbolPeriod int
	// Waveform produces a representative random burst.
	Waveform func(rnd *rand.Rand) (dsp.IQ, error)
}

// Similarity measures how closely the emulator can reproduce the
// target's waveform. rnd drives the random representative burst, making
// scores reproducible.
func Similarity(e Emulator, tgt Target, rnd *rand.Rand) (float64, error) {
	if e.SymbolPeriod < 1 || tgt.SymbolPeriod < 1 {
		return 0, fmt.Errorf("modsim: symbol periods must be positive (%d, %d)", e.SymbolPeriod, tgt.SymbolPeriod)
	}
	if e.Modulate == nil || tgt.Waveform == nil {
		return 0, fmt.Errorf("modsim: nil modulator or waveform source")
	}
	if rnd == nil {
		return 0, fmt.Errorf("modsim: nil random source")
	}

	target, err := tgt.Waveform(rnd)
	if err != nil {
		return 0, err
	}
	fB := dsp.Discriminate(target)
	if len(fB) < e.SymbolPeriod {
		return 0, fmt.Errorf("modsim: target burst shorter than one emulator symbol")
	}

	// Greedy per-symbol tracking: transmit the symbol whose frequency
	// sign matches the target window's mean.
	nSym := len(fB) / e.SymbolPeriod
	bits := make(bitstream.Bits, nSym)
	for k := 0; k < nSym; k++ {
		var sum float64
		for i := k * e.SymbolPeriod; i < (k+1)*e.SymbolPeriod; i++ {
			sum += fB[i]
		}
		if sum > 0 {
			bits[k] = 1
		}
	}
	emulated, err := e.Modulate(bits)
	if err != nil {
		return 0, err
	}
	fA := dsp.Discriminate(emulated)

	// Evaluate both waveforms on the target receiver's decision grid,
	// at the best alignment within four emulator symbol periods (pulse
	// shaping introduces group delay).
	sumsB := dsp.IntegrateSymbols(fB, 0, tgt.SymbolPeriod)
	best := 0.0
	for lag := 0; lag <= 4*e.SymbolPeriod; lag++ {
		sumsA := dsp.IntegrateSymbols(fA, lag, tgt.SymbolPeriod)
		if s := trackingScore(sumsA, sumsB); s > best {
			best = s
		}
	}
	return best, nil
}

// trackingScore is 1 − RMSE/(π/2) of per-symbol phase increments over
// the common span, floored at 0.
func trackingScore(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	s := 1 - math.Sqrt(sum/float64(n))/(math.Pi/2)
	if s < 0 {
		return 0
	}
	return s
}

// GFSKEmulator builds an emulator for a GFSK radio with the given
// modulation index and Gaussian BT product at samplesPerSymbol.
func GFSKEmulator(name string, mode ble.Mode, samplesPerSymbol int, modIndex, bt float64) (Emulator, error) {
	phy, err := ble.NewPHYWithShaping(mode, samplesPerSymbol, modIndex, bt)
	if err != nil {
		return Emulator{}, err
	}
	return Emulator{
		Name:         name,
		SymbolPeriod: samplesPerSymbol,
		Modulate:     phy.ModulateBits,
	}, nil
}

// OQPSKTarget builds the 802.15.4 O-QPSK half-sine target: random
// spread frames at samplesPerChip.
func OQPSKTarget(samplesPerChip int) (Target, error) {
	phy, err := ieee802154.NewPHY(samplesPerChip)
	if err != nil {
		return Target{}, err
	}
	return Target{
		Name:         "802.15.4 O-QPSK half-sine",
		SymbolPeriod: samplesPerChip,
		Waveform: func(rnd *rand.Rand) (dsp.IQ, error) {
			payload := make([]byte, 16)
			rnd.Read(payload)
			return phy.ModulateChips(ieee802154.Spread(payload))
		},
	}, nil
}

// PairScore is one row of a pivotability report.
type PairScore struct {
	Emulator string
	Target   string
	Score    float64
}

// CatalogueEntry describes one GFSK-family radio of the pivotability
// catalogue in terms independent of the oversampling factor: the symbol
// period is PeriodFactor × samplesPerSymbol.
type CatalogueEntry struct {
	Name         string
	Mode         ble.Mode
	PeriodFactor int
	ModIndex     float64
	BT           float64
}

// Catalogue returns the GFSK-family radios the pivotability survey
// scores against the 802.15.4 target: the MSK ideal, the BLE LE 2M
// variants across the specification's 0.45..0.55 modulation-index band,
// the deviation pathologies, and the LE 1M rate mismatch.
func Catalogue() []CatalogueEntry {
	return []CatalogueEntry{
		{Name: "MSK 2M (ideal)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 0.5, BT: 0},
		{Name: "BLE LE 2M GFSK (m=0.5, BT=0.5)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 0.5, BT: 0.5},
		{Name: "BLE LE 2M GFSK (m=0.45)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 0.45, BT: 0.5},
		{Name: "BLE LE 2M GFSK (m=0.55)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 0.55, BT: 0.5},
		{Name: "GFSK m=0.25 (half deviation)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 0.25, BT: 0.5},
		{Name: "GFSK m=1.0 (double deviation)", Mode: ble.LE2M, PeriodFactor: 1, ModIndex: 1.0, BT: 0.5},
		{Name: "BLE LE 1M GFSK (rate mismatch)", Mode: ble.LE1M, PeriodFactor: 2, ModIndex: 0.5, BT: 0.5},
	}
}

// ScoreEntry scores one catalogue entry against a target at the given
// oversampling: one random representative burst drawn from seed. The
// same (entry, samplesPerSymbol, seed) always yields the same score, so
// Monte-Carlo surveys can shard trials freely.
func ScoreEntry(e CatalogueEntry, tgt Target, samplesPerSymbol int, seed int64) (PairScore, error) {
	em, err := GFSKEmulator(e.Name, e.Mode, e.PeriodFactor*samplesPerSymbol, e.ModIndex, e.BT)
	if err != nil {
		return PairScore{}, err
	}
	score, err := Similarity(em, tgt, rand.New(rand.NewSource(seed)))
	if err != nil {
		return PairScore{}, err
	}
	return PairScore{Emulator: e.Name, Target: tgt.Name, Score: score}, nil
}

// SurveyAgainstOQPSK scores the catalogue against the 802.15.4 target
// on a single representative burst per entry, reproducing the paper's
// qualitative statements: LE 2M with index ≈ 0.5 is pivotable, LE 1M and
// off-index radios are not (or much less so). For a many-burst survey
// with confidence intervals, see experiment.RunPivotScan.
func SurveyAgainstOQPSK(samplesPerSymbol int, seed int64) ([]PairScore, error) {
	tgt, err := OQPSKTarget(samplesPerSymbol)
	if err != nil {
		return nil, err
	}
	out := make([]PairScore, 0, len(Catalogue()))
	for _, e := range Catalogue() {
		ps, err := ScoreEntry(e, tgt, samplesPerSymbol, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ps)
	}
	return out, nil
}
