package modsim

import (
	"math/rand"
	"testing"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
)

const testSPS = 8

func survey(t *testing.T) map[string]float64 {
	t.Helper()
	scores, err := SurveyAgainstOQPSK(testSPS, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(scores))
	for _, s := range scores {
		out[s.Emulator] = s.Score
	}
	return out
}

func TestSurveyScoresInUnitInterval(t *testing.T) {
	for name, score := range survey(t) {
		if score < 0 || score > 1 {
			t.Errorf("%s score %g outside [0,1]", name, score)
		}
	}
}

func TestWazaBeePairScoresHigh(t *testing.T) {
	s := survey(t)
	// The paper's premise: ideal MSK at 2 Mbit/s is (nearly) the
	// O-QPSK half-sine waveform, and the BLE Gaussian filter costs only
	// part of the margin.
	if s["MSK 2M (ideal)"] < 0.9 {
		t.Errorf("MSK/O-QPSK similarity = %.3f, want ≥ 0.9", s["MSK 2M (ideal)"])
	}
	if s["BLE LE 2M GFSK (m=0.5, BT=0.5)"] < 0.6 {
		t.Errorf("BLE LE 2M similarity = %.3f, want ≥ 0.6 (pivotable)", s["BLE LE 2M GFSK (m=0.5, BT=0.5)"])
	}
}

func TestToleranceBandRemainsPivotable(t *testing.T) {
	s := survey(t)
	for _, name := range []string{"BLE LE 2M GFSK (m=0.45)", "BLE LE 2M GFSK (m=0.55)"} {
		if s[name] < 0.55 {
			t.Errorf("%s similarity = %.3f, want ≥ 0.55", name, s[name])
		}
	}
}

func TestMismatchedModulationsScoreLow(t *testing.T) {
	s := survey(t)
	ble2m := s["BLE LE 2M GFSK (m=0.5, BT=0.5)"]
	for _, name := range []string{
		"GFSK m=0.25 (half deviation)",
		"GFSK m=1.0 (double deviation)",
		"BLE LE 1M GFSK (rate mismatch)",
	} {
		if s[name] >= ble2m {
			t.Errorf("%s (%.3f) should score below BLE LE 2M (%.3f)", name, s[name], ble2m)
		}
	}
	// The data-rate requirement of section IV-D: LE 1M is the worst of
	// the GFSK family.
	if s["BLE LE 1M GFSK (rate mismatch)"] > 0.4 {
		t.Errorf("LE 1M similarity = %.3f, want ≤ 0.4", s["BLE LE 1M GFSK (rate mismatch)"])
	}
}

func TestHalfDeviationHalvesMargin(t *testing.T) {
	s := survey(t)
	// m = 0.25 transmits ±π/4 per symbol against a ±π/2 target: the
	// per-symbol error is π/4, i.e. half the decision quantum, so the
	// metric should sit near 0.5 (before shaping losses).
	got := s["GFSK m=0.25 (half deviation)"]
	if got < 0.3 || got > 0.6 {
		t.Errorf("half-deviation similarity = %.3f, want ≈ 0.4-0.5", got)
	}
}

func TestSimilarityDeterministic(t *testing.T) {
	tgt, err := OQPSKTarget(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	em, err := GFSKEmulator("ble", ble.LE2M, testSPS, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Similarity(em, tgt, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Similarity(em, tgt, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %g and %g", a, b)
	}
}

func TestSimilarityValidation(t *testing.T) {
	tgt, err := OQPSKTarget(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	em, err := GFSKEmulator("ble", ble.LE2M, testSPS, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))

	bad := em
	bad.SymbolPeriod = 0
	if _, err := Similarity(bad, tgt, rnd); err == nil {
		t.Error("expected error for zero symbol period")
	}
	bad = em
	bad.Modulate = nil
	if _, err := Similarity(bad, tgt, rnd); err == nil {
		t.Error("expected error for nil modulator")
	}
	if _, err := Similarity(em, Target{SymbolPeriod: testSPS}, rnd); err == nil {
		t.Error("expected error for nil waveform source")
	}
	if _, err := Similarity(em, tgt, nil); err == nil {
		t.Error("expected error for nil random source")
	}
	tiny := tgt
	tiny.Waveform = func(*rand.Rand) (dsp.IQ, error) { return make(dsp.IQ, 2), nil }
	if _, err := Similarity(em, tiny, rnd); err == nil {
		t.Error("expected error for too-short target burst")
	}
}

func TestGFSKEmulatorValidation(t *testing.T) {
	if _, err := GFSKEmulator("x", ble.Mode(0), testSPS, 0.5, 0.5); err == nil {
		t.Error("expected error for invalid mode")
	}
}

func TestTrackingScoreEdgeCases(t *testing.T) {
	if s := trackingScore(nil, nil); s != 0 {
		t.Errorf("empty tracking score = %g, want 0", s)
	}
	same := []float64{1.5, -1.5, 1.5}
	if s := trackingScore(same, same); s != 1 {
		t.Errorf("identical tracking score = %g, want 1", s)
	}
	far := []float64{9, 9, 9}
	if s := trackingScore(far, []float64{-9, -9, -9}); s != 0 {
		t.Errorf("hopeless tracking score = %g, want 0 (floored)", s)
	}
}

// TestSelfSimilarity: every modulation should emulate itself (near)
// perfectly — a sanity check on the metric.
func TestSelfSimilarity(t *testing.T) {
	phy, err := ble.NewPHYWithShaping(ble.LE2M, testSPS, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	em := Emulator{Name: "msk", SymbolPeriod: testSPS, Modulate: phy.ModulateBits}
	tgt := Target{
		Name:         "msk",
		SymbolPeriod: testSPS,
		Waveform: func(rnd *rand.Rand) (dsp.IQ, error) {
			payload := make([]byte, 32)
			rnd.Read(payload)
			return phy.ModulateBits(bitstream.BytesToBits(payload))
		},
	}
	score, err := Similarity(em, tgt, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.95 {
		t.Errorf("self-similarity = %.3f, want ≥ 0.95", score)
	}
}
