package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. The length must be a power of two.
func FFT(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("dsp: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// IFFT computes the inverse FFT of x in place (power-of-two length).
func IFFT(x []complex128) error {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	if err := FFT(x); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * scale
	}
	return nil
}

// PowerSpectralDensity estimates the PSD of a signal by Welch's method:
// Hann-windowed segments of fftSize samples with 50 % overlap, averaged
// periodograms. The output has fftSize bins ordered from -fs/2 to +fs/2
// (DC in the middle), normalised so the bin values sum to the signal
// power.
func PowerSpectralDensity(sig IQ, fftSize int) ([]float64, error) {
	if fftSize < 2 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two ≥ 2", fftSize)
	}
	if len(sig) < fftSize {
		return nil, fmt.Errorf("dsp: signal shorter (%d) than FFT size %d", len(sig), fftSize)
	}

	window := make([]float64, fftSize)
	var windowPower float64
	for i := range window {
		window[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(fftSize-1)))
		windowPower += window[i] * window[i]
	}

	psd := make([]float64, fftSize)
	segments := 0
	buf := make([]complex128, fftSize)
	for start := 0; start+fftSize <= len(sig); start += fftSize / 2 {
		for i := 0; i < fftSize; i++ {
			buf[i] = sig[start+i] * complex(window[i], 0)
		}
		if err := FFT(buf); err != nil {
			return nil, err
		}
		for i, v := range buf {
			re, im := real(v), imag(v)
			psd[i] += re*re + im*im
		}
		segments++
	}
	// Normalise and shift DC to the centre.
	scale := 1 / (float64(segments) * windowPower * float64(fftSize))
	out := make([]float64, fftSize)
	for i := range psd {
		out[(i+fftSize/2)%fftSize] = psd[i] * scale * float64(fftSize)
	}
	return out, nil
}

// OccupiedBandwidth returns the fraction of total PSD power inside the
// central fraction of the band — a crude spectral-width measure used to
// compare modulation footprints.
func OccupiedBandwidth(psd []float64, centralFraction float64) float64 {
	if len(psd) == 0 || centralFraction <= 0 {
		return 0
	}
	if centralFraction > 1 {
		centralFraction = 1
	}
	var total float64
	for _, v := range psd {
		total += v
	}
	if total == 0 {
		return 0
	}
	span := int(float64(len(psd)) * centralFraction / 2)
	mid := len(psd) / 2
	var inner float64
	for i := mid - span; i <= mid+span && i < len(psd); i++ {
		if i < 0 {
			continue
		}
		inner += psd[i]
	}
	return inner / total
}
