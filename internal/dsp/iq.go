// Package dsp is the signal-processing substrate for the simulated radios:
// complex-baseband sample buffers, pulse shapes (Gaussian, half-sine), FIR
// filtering, a phase discriminator, additive white Gaussian noise and
// correlation utilities.
//
// All signals are complex baseband at a configurable sample rate. The
// modulators in internal/ble and internal/ieee802154 produce IQ buffers and
// the radio medium in internal/radio perturbs them before they reach a
// demodulator, which mirrors how the physical experiment in the paper
// couples two radio front ends over the air.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IQ is a complex-baseband sample buffer.
type IQ []complex128

// Clone returns an independent copy of the buffer.
func (s IQ) Clone() IQ {
	out := make(IQ, len(s))
	copy(out, s)
	return out
}

// Power returns the mean squared magnitude of the buffer, or zero for an
// empty buffer.
func (s IQ) Power() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum / float64(len(s))
}

// PowerSegment returns the mean squared magnitude of the samples in
// [from, to), clamped to the buffer; an empty range returns zero. Link
// diagnostics use it to measure the decoded frame span and the
// noise-only guard regions separately.
func (s IQ) PowerSegment(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s) {
		to = len(s)
	}
	if from >= to {
		return 0
	}
	var sum float64
	for _, v := range s[from:to] {
		re, im := real(v), imag(v)
		sum += re*re + im*im
	}
	return sum / float64(to-from)
}

// PowerSegment is the free-function form of IQ.PowerSegment.
func PowerSegment(s IQ, from, to int) float64 {
	return s.PowerSegment(from, to)
}

// Scale multiplies every sample by g in place and returns the buffer.
func (s IQ) Scale(g float64) IQ {
	for i := range s {
		s[i] *= complex(g, 0)
	}
	return s
}

// Add sums other into the buffer in place, starting at sample offset.
// Samples of other that fall outside the buffer are ignored, which models a
// partially overlapping interfering transmission.
func (s IQ) Add(other IQ, offset int) IQ {
	for i, v := range other {
		j := offset + i
		if j < 0 || j >= len(s) {
			continue
		}
		s[j] += v
	}
	return s
}

// MixFrequency applies a frequency offset of df (cycles per sample; i.e.
// frequency in Hz divided by the sample rate) in place. This models carrier
// frequency offset between two crystal oscillators.
func (s IQ) MixFrequency(df float64) IQ {
	phase := 0.0
	step := 2 * math.Pi * df
	for i := range s {
		s[i] *= cmplx.Exp(complex(0, phase))
		phase += step
		if phase > math.Pi {
			phase -= 2 * math.Pi
		}
	}
	return s
}

// RotatePhase applies a constant phase rotation (radians) in place. A
// noncoherent receiver must work for any value.
func (s IQ) RotatePhase(theta float64) IQ {
	r := cmplx.Exp(complex(0, theta))
	for i := range s {
		s[i] *= r
	}
	return s
}

// Pad returns the buffer extended with before leading and after trailing
// zero samples.
func (s IQ) Pad(before, after int) (IQ, error) {
	if before < 0 || after < 0 {
		return nil, fmt.Errorf("dsp: negative padding (%d, %d)", before, after)
	}
	out := make(IQ, before+len(s)+after)
	copy(out[before:], s)
	return out, nil
}

// EnvelopeDeviation returns the maximum relative deviation of the signal
// envelope from its mean magnitude. Constant-envelope modulations (MSK,
// O-QPSK with half-sine shaping, GFSK) should return values near zero away
// from the buffer edges; edge samples can be trimmed by the caller.
func (s IQ) EnvelopeDeviation() float64 {
	if len(s) == 0 {
		return 0
	}
	var mean float64
	for _, v := range s {
		mean += cmplx.Abs(v)
	}
	mean /= float64(len(s))
	if mean == 0 {
		return 0
	}
	var worst float64
	for _, v := range s {
		d := math.Abs(cmplx.Abs(v)-mean) / mean
		if d > worst {
			worst = d
		}
	}
	return worst
}
