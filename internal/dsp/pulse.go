package dsp

import (
	"fmt"
	"math"
)

// GaussianPulse returns the discrete frequency pulse used by a GFSK
// modulator: a rectangular pulse of one symbol duration convolved with a
// Gaussian filter of the given bandwidth-time product, sampled at sps
// samples per symbol and truncated to span symbols on either side.
//
// The pulse is normalised so that its samples sum to sps; integrating the
// instantaneous frequency over one isolated symbol then accumulates exactly
// the full modulation phase (±π·m for modulation index m).
//
// With bt <= 0 the Gaussian filter is disabled and the pulse degenerates to
// the rectangular pulse of plain 2-FSK/MSK, which is the approximation the
// WazaBee analysis makes ("if we neglect the effect of the Gaussian
// filter").
func GaussianPulse(bt float64, sps, span int) ([]float64, error) {
	if sps < 1 {
		return nil, fmt.Errorf("dsp: samples per symbol %d < 1", sps)
	}
	if span < 1 {
		return nil, fmt.Errorf("dsp: pulse span %d < 1", span)
	}
	if bt <= 0 {
		pulse := make([]float64, sps)
		for i := range pulse {
			pulse[i] = 1
		}
		return pulse, nil
	}

	// Gaussian impulse response h(t) = sqrt(2π/ln2)·B·exp(−2π²B²t²/ln2)
	// with B = bt/Ts, evaluated over ±span symbol periods.
	n := (2*span + 1) * sps
	h := make([]float64, n)
	var hsum float64
	alpha := 2 * math.Pi * math.Pi * bt * bt / math.Ln2
	for i := range h {
		t := (float64(i) - float64(n-1)/2) / float64(sps) // in symbol periods
		h[i] = math.Exp(-alpha * t * t)
		hsum += h[i]
	}
	for i := range h {
		h[i] /= hsum
	}

	// Convolve with the one-symbol rectangular pulse.
	pulse := make([]float64, n+sps-1)
	for i := range h {
		for j := 0; j < sps; j++ {
			pulse[i+j] += h[i]
		}
	}

	// Normalise: each symbol must integrate to a full phase step.
	var sum float64
	for _, v := range pulse {
		sum += v
	}
	scale := float64(sps) / sum
	for i := range pulse {
		pulse[i] *= scale
	}
	return pulse, nil
}

// HalfSinePulse returns the half-sine chip pulse of O-QPSK with half-sine
// shaping: sin(πt/(2Tc)) over a duration of two chip periods, sampled at
// sps samples per chip.
func HalfSinePulse(sps int) ([]float64, error) {
	if sps < 1 {
		return nil, fmt.Errorf("dsp: samples per chip %d < 1", sps)
	}
	n := 2 * sps
	pulse := make([]float64, n)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(n))
	}
	return pulse, nil
}
