package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTLengthValidation(t *testing.T) {
	if err := FFT(make([]complex128, 3)); err == nil {
		t.Error("expected error for non-power-of-two length")
	}
	if err := FFT(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if err := IFFT(make([]complex128, 5)); err == nil {
		t.Error("expected error for non-power-of-two inverse")
	}
}

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 8)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1 (flat spectrum of an impulse)", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*bin*float64(i)/n))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := 0.0
		if i == bin {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d magnitude = %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	x := make([]complex128, 128)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
		orig[i] = x[i]
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if err := IFFT(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	x := make([]complex128, 256)
	var timePower float64
	for i := range x {
		x[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
		timePower += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqPower float64
	for _, v := range x {
		freqPower += real(v)*real(v) + imag(v)*imag(v)
	}
	freqPower /= float64(len(x))
	if math.Abs(timePower-freqPower)/timePower > 1e-12 {
		t.Errorf("Parseval violated: time %g vs freq %g", timePower, freqPower)
	}
}

func TestPSDToneLocation(t *testing.T) {
	// A tone at +fs/8 must concentrate power in the bin at +N/8 from
	// centre.
	const n = 4096
	sig := make(IQ, n)
	for i := range sig {
		sig[i] = cmplx.Exp(complex(0, 2*math.Pi*0.125*float64(i)))
	}
	psd, err := PowerSpectralDensity(sig, 256)
	if err != nil {
		t.Fatal(err)
	}
	peak, peakIdx := 0.0, 0
	for i, v := range psd {
		if v > peak {
			peak, peakIdx = v, i
		}
	}
	want := 256/2 + 256/8
	if peakIdx != want {
		t.Errorf("PSD peak at bin %d, want %d", peakIdx, want)
	}
}

func TestPSDValidation(t *testing.T) {
	sig := make(IQ, 100)
	if _, err := PowerSpectralDensity(sig, 100); err == nil {
		t.Error("expected error for non-power-of-two FFT size")
	}
	if _, err := PowerSpectralDensity(sig, 256); err == nil {
		t.Error("expected error for short signal")
	}
}

func TestOccupiedBandwidth(t *testing.T) {
	psd := make([]float64, 64)
	psd[32] = 1 // all power at DC
	if got := OccupiedBandwidth(psd, 0.1); got != 1 {
		t.Errorf("concentrated OBW = %g, want 1", got)
	}
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = 1
	}
	got := OccupiedBandwidth(flat, 0.5)
	if got < 0.4 || got > 0.6 {
		t.Errorf("flat-spectrum OBW(0.5) = %g, want ≈ 0.5", got)
	}
	if OccupiedBandwidth(nil, 0.5) != 0 {
		t.Error("empty PSD should return 0")
	}
	if OccupiedBandwidth(make([]float64, 8), 0.5) != 0 {
		t.Error("all-zero PSD should return 0")
	}
	if OccupiedBandwidth(flat, 0) != 0 {
		t.Error("zero fraction should return 0")
	}
	if OccupiedBandwidth(flat, 2) != 1 {
		t.Error("fraction above 1 should clamp to the whole band")
	}
}
