package stream

import (
	"wazabee/internal/dsp"
)

// Stage is the common surface of every streaming pipeline stage. A
// stage consumes chunked slabs through its type-specific Process
// method, carries whatever state it needs across chunk boundaries, and
// can be rewound to its initial state with Reset so pipelines are
// reusable without reallocating.
//
// Stages are deliberately not goroutine-safe: one pipeline instance
// serves one stream. Run one pipeline per channel for concurrency.
type Stage interface {
	// Name identifies the stage in metrics and traces (the stage label
	// of wazabee_stage_seconds).
	Name() string
	// Reset discards all carry-over state, keeping allocated capacity.
	Reset()
}

// Discriminator is the streaming GFSK quadrature discriminator stage:
// it converts chunked IQ slabs into phase increments, carrying the last
// sample of each chunk so the increment across a chunk boundary is
// computed exactly as if the capture had been discriminated whole.
type Discriminator struct {
	carry  complex128
	primed bool
}

// Name implements Stage.
func (d *Discriminator) Name() string { return "discriminate" }

// Reset implements Stage.
func (d *Discriminator) Reset() { d.primed = false }

// Process appends the phase increments of chunk to out and returns the
// extended slice. For a stream split into chunks c₀, c₁, …, the
// concatenated output equals dsp.Discriminate(c₀‖c₁‖…) exactly,
// boundary increments included.
func (d *Discriminator) Process(chunk dsp.IQ, out []float64) []float64 {
	if len(chunk) == 0 {
		return out
	}
	if d.primed {
		out = dsp.DiscriminateAcross(out, d.carry, chunk[0])
	}
	out = dsp.DiscriminateInto(out, chunk)
	d.carry = chunk[len(chunk)-1]
	d.primed = true
	return out
}
