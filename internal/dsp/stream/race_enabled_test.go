//go:build race

package stream

// raceEnabled reports that the race detector is active: sync.Pool
// intentionally drops Puts at random under -race, so deterministic
// reuse/allocation assertions must be skipped.
const raceEnabled = true
