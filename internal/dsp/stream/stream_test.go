package stream

import (
	"math/rand"
	"testing"

	"wazabee/internal/dsp"
)

// randomIQ builds a deterministic complex noise buffer.
func randomIQ(seed int64, n int) dsp.IQ {
	rnd := rand.New(rand.NewSource(seed))
	out := make(dsp.IQ, n)
	for i := range out {
		out[i] = complex(rnd.NormFloat64(), rnd.NormFloat64())
	}
	return out
}

func TestBufferPoolReuseAndStats(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	var p BufferPool

	iq := p.IQ(64)
	if len(iq) != 0 || cap(iq) < 64 {
		t.Fatalf("IQ slab len=%d cap=%d, want 0/≥64", len(iq), cap(iq))
	}
	p.PutIQ(iq)
	iq2 := p.IQ(32)
	if cap(iq2) < 64 {
		t.Errorf("recycled IQ slab cap=%d, want the returned slab (cap ≥ 64)", cap(iq2))
	}

	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// An undersized recycled slab must be dropped, counting a miss.
	p.PutF64(p.F64(16))
	big := p.F64(1 << 16)
	if cap(big) < 1<<16 {
		t.Fatalf("F64 slab cap=%d, want ≥ %d", cap(big), 1<<16)
	}
	st = p.Stats()
	if st.Misses != 3 { // IQ(64), F64(16), F64(1<<16)
		t.Errorf("misses = %d, want 3", st.Misses)
	}

	// Bits round trip.
	b := p.Bits(8)
	b = append(b, 1, 0, 1)
	p.PutBits(b)
	b2 := p.Bits(4)
	if len(b2) != 0 {
		t.Errorf("recycled bit slab len=%d, want 0", len(b2))
	}

	if Shared() == nil || Or(nil) != Shared() || Or(&p) != &p {
		t.Error("Shared/Or wiring broken")
	}
}

func TestBufferPoolAllocsPerRun(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	var p BufferPool
	p.PutF64(p.F64(4096))
	p.PutIQ(p.IQ(4096))
	allocs := testing.AllocsPerRun(200, func() {
		f := p.F64(4096)
		p.PutF64(f)
		iq := p.IQ(4096)
		p.PutIQ(iq)
	})
	if allocs != 0 {
		t.Errorf("pool get/put allocates %v per run, want 0", allocs)
	}
}

// TestDiscriminatorChunked: any chunking of a capture must produce the
// exact increments of the one-shot discriminator, including the values
// at chunk boundaries.
func TestDiscriminatorChunked(t *testing.T) {
	sig := randomIQ(1, 1024)
	want := dsp.Discriminate(sig)

	for _, chunk := range []int{1, 2, 3, 7, 16, 255, 1024} {
		var d Discriminator
		var got []float64
		for start := 0; start < len(sig); start += chunk {
			end := start + chunk
			if end > len(sig) {
				end = len(sig)
			}
			got = d.Process(sig[start:end], got)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d increments, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk=%d: increment %d = %v, want %v (not bit-identical)", chunk, i, got[i], want[i])
			}
		}
		if d.Name() != "discriminate" {
			t.Fatal("wrong stage name")
		}
	}
}

// TestCorrelatorMatchesFindPattern: the streaming correlator must make
// the exact candidate decision of the one-shot IntegrateSymbols →
// SliceBits → FindPattern → SoftScore chain, for any chunking.
func TestCorrelatorMatchesFindPattern(t *testing.T) {
	const sps = 4
	const maxErrors = 3
	pattern := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1}

	// A signal whose increments embed the pattern: random phase noise
	// with a strong patterned segment in the middle.
	rnd := rand.New(rand.NewSource(7))
	incs := make([]float64, 2048)
	for i := range incs {
		incs[i] = rnd.NormFloat64() * 0.2
	}
	at := 600
	for i, b := range pattern {
		v := 0.4
		if b == 0 {
			v = -0.4
		}
		for j := 0; j < sps; j++ {
			incs[at+i*sps+j] = v
		}
	}

	// One-shot reference decision.
	wantPhase, wantPos, wantErrs := -1, 0, 0
	var wantScore float64
	for phase := 0; phase < sps; phase++ {
		sums := dsp.IntegrateSymbols(incs, phase, sps)
		bits := dsp.SliceBits(sums)
		pos, errs, ok := dsp.FindPattern(bits, pattern, maxErrors)
		if !ok {
			continue
		}
		score, ok := dsp.SoftScore(sums, pattern, pos)
		if !ok {
			continue
		}
		if wantPhase < 0 || score > wantScore {
			wantPhase, wantPos, wantErrs, wantScore = phase, pos, errs, score
		}
	}
	if wantPhase < 0 {
		t.Fatal("reference correlator found no candidate; test signal broken")
	}

	for _, chunk := range []int{1, 3, 5, 32, 500, len(incs)} {
		c := NewCorrelator(nil, pattern, maxErrors, sps)
		for start := 0; start < len(incs); start += chunk {
			end := start + chunk
			if end > len(incs) {
				end = len(incs)
			}
			c.Process(incs[start:end])
		}
		got, ok := c.Best()
		if !ok {
			t.Fatalf("chunk=%d: no candidate", chunk)
		}
		if got.Phase != wantPhase || got.Pos != wantPos || got.Errors != wantErrs || got.Score != wantScore {
			t.Errorf("chunk=%d: candidate %+v, want phase=%d pos=%d errs=%d score=%v",
				chunk, got, wantPhase, wantPos, wantErrs, wantScore)
		}
		// The retained symbol sums must be bit-identical to the one-shot
		// integration at the winning phase.
		wantSums := dsp.IntegrateSymbols(incs, wantPhase, sps)
		gotSums := c.Sums(wantPhase)
		if len(gotSums) != len(wantSums) {
			t.Fatalf("chunk=%d: %d sums, want %d", chunk, len(gotSums), len(wantSums))
		}
		for i := range gotSums {
			if gotSums[i] != wantSums[i] {
				t.Fatalf("chunk=%d: sum %d differs (not bit-identical)", chunk, i)
			}
		}
		c.Close()
	}
}

// TestCorrelatorCompact: dropping a consumed prefix must re-anchor the
// scan so a later pattern is still found at its new offset.
func TestCorrelatorCompact(t *testing.T) {
	const sps = 2
	pattern := []byte{1, 1, 0, 1, 0, 0, 1, 1}
	mk := func(b byte) float64 {
		if b == 1 {
			return 0.5
		}
		return -0.5
	}
	var incs []float64
	emit := func(bits ...byte) {
		for _, b := range bits {
			for j := 0; j < sps; j++ {
				incs = append(incs, mk(b))
			}
		}
	}
	emit(0, 1, 0) // filler
	emit(pattern...)
	c := NewCorrelator(nil, pattern, 0, sps)
	defer c.Close()
	c.Process(incs)
	best, ok := c.Best()
	if !ok || best.Pos != 3 {
		t.Fatalf("pre-compact candidate %+v ok=%v, want pos 3", best, ok)
	}

	c.Compact(c.Len())
	if _, ok := c.Best(); ok {
		t.Fatal("candidate survived a full compact")
	}
	incs = incs[:0]
	emit(1, 0)
	emit(pattern...)
	c.Process(incs)
	best, ok = c.Best()
	if !ok || best.Pos != 2 {
		t.Fatalf("post-compact candidate %+v ok=%v, want pos 2", best, ok)
	}
}
