// Package stream is the streaming substrate of the WazaBee signal path:
// a sync.Pool-backed BufferPool for the three slab kinds the pipeline
// moves (complex IQ samples, float64 phase increments / symbol sums,
// hard-decision bits) and the composable Stage implementations — GFSK
// discriminator, pattern correlator with carry-over state across chunk
// boundaries — that let a receiver process a capture incrementally
// instead of requiring it whole in memory.
//
// Ownership contract (the pooling rules DESIGN.md §9 documents): a slab
// obtained from a BufferPool belongs to the caller until it is returned
// with the matching Put method. Stages never retain a caller's input
// slab past Process; anything a stage must carry across chunk
// boundaries it copies into state it owns. Returned/emitted buffers
// (e.g. a decoded PSDU) transfer ownership to the consumer and are
// never pooled.
package stream

import (
	"sync"
	"sync/atomic"

	"wazabee/internal/dsp"
)

// BufferPool recycles the pipeline's scratch slabs. The zero value is
// ready to use; the pool is safe for concurrent use. Get methods return
// a slab with length 0 and capacity ≥ the requested hint; callers
// append into it and hand it back with the matching Put.
//
// Slabs are stored behind *[]T header cells, and the cells themselves
// are recycled through sibling pools, so a warmed-up Get/Put cycle
// performs no heap allocation at all.
type BufferPool struct {
	iq, iqCells     sync.Pool // *[]complex128
	f64, f64Cells   sync.Pool // *[]float64
	bits, bitsCells sync.Pool // *[]byte

	hits   atomic.Uint64
	misses atomic.Uint64
}

// sharedPool is the process-wide default pool.
var sharedPool BufferPool

// Shared returns the process-wide default BufferPool, used by every
// pipeline component whose Pool field is nil.
func Shared() *BufferPool { return &sharedPool }

// Or returns p, or the shared pool when p is nil.
func Or(p *BufferPool) *BufferPool {
	if p == nil {
		return &sharedPool
	}
	return p
}

// IQ returns a zero-length IQ slab with capacity at least capHint.
func (p *BufferPool) IQ(capHint int) dsp.IQ {
	if v := p.iq.Get(); v != nil {
		cell := v.(*[]complex128)
		buf := *cell
		*cell = nil
		p.iqCells.Put(cell)
		if cap(buf) >= capHint {
			p.hits.Add(1)
			return buf[:0]
		}
		// Too small for this request: drop it and allocate.
	}
	p.misses.Add(1)
	return make(dsp.IQ, 0, capHint)
}

// PutIQ returns an IQ slab to the pool. Slabs without capacity are
// ignored.
func (p *BufferPool) PutIQ(buf dsp.IQ) {
	if cap(buf) == 0 {
		return
	}
	var cell *[]complex128
	if v := p.iqCells.Get(); v != nil {
		cell = v.(*[]complex128)
	} else {
		cell = new([]complex128)
	}
	*cell = buf[:0]
	p.iq.Put(cell)
}

// F64 returns a zero-length float64 slab with capacity at least capHint
// (phase increments, per-symbol sums).
func (p *BufferPool) F64(capHint int) []float64 {
	if v := p.f64.Get(); v != nil {
		cell := v.(*[]float64)
		buf := *cell
		*cell = nil
		p.f64Cells.Put(cell)
		if cap(buf) >= capHint {
			p.hits.Add(1)
			return buf[:0]
		}
	}
	p.misses.Add(1)
	return make([]float64, 0, capHint)
}

// PutF64 returns a float64 slab to the pool. Slabs without capacity are
// ignored.
func (p *BufferPool) PutF64(buf []float64) {
	if cap(buf) == 0 {
		return
	}
	var cell *[]float64
	if v := p.f64Cells.Get(); v != nil {
		cell = v.(*[]float64)
	} else {
		cell = new([]float64)
	}
	*cell = buf[:0]
	p.f64.Put(cell)
}

// Bits returns a zero-length bit slab with capacity at least capHint.
func (p *BufferPool) Bits(capHint int) []byte {
	if v := p.bits.Get(); v != nil {
		cell := v.(*[]byte)
		buf := *cell
		*cell = nil
		p.bitsCells.Put(cell)
		if cap(buf) >= capHint {
			p.hits.Add(1)
			return buf[:0]
		}
	}
	p.misses.Add(1)
	return make([]byte, 0, capHint)
}

// PutBits returns a bit slab to the pool. Slabs without capacity are
// ignored.
func (p *BufferPool) PutBits(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	var cell *[]byte
	if v := p.bitsCells.Get(); v != nil {
		cell = v.(*[]byte)
	} else {
		cell = new([]byte)
	}
	*cell = buf[:0]
	p.bits.Put(cell)
}

// PoolStats is a point-in-time view of a BufferPool's reuse behaviour.
type PoolStats struct {
	// Hits counts Get calls satisfied by a recycled slab of sufficient
	// capacity; Misses counts Gets that had to allocate.
	Hits, Misses uint64
}

// Stats returns the cumulative hit/miss counts, for the
// wazabee_stream_pool_* gauges.
func (p *BufferPool) Stats() PoolStats {
	return PoolStats{Hits: p.hits.Load(), Misses: p.misses.Load()}
}
