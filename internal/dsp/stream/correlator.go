package stream

import (
	"wazabee/internal/dsp"
)

// Correlator is the streaming Access-Address/preamble synchronisation
// stage. It accumulates phase increments, maintains the per-sampling-
// phase symbol sums and hard bit decisions incrementally, and scans
// each phase for the bit pattern with the exact candidate-selection
// semantics of the one-shot receiver (dsp.FindPattern ranking plus
// dsp.SoftScore tie-breaking across phases): per phase the candidate
// with the fewest mismatches wins, earliest position on ties, scanning
// freezes once a zero-error match is found; across phases the
// qualifying candidate with the highest soft correlation wins.
//
// All carry-over state — partial symbol windows at chunk boundaries,
// scan positions, per-phase best candidates — lives inside the stage,
// so feeding a capture in chunks of any size produces bit-identical
// decisions to processing it whole.
type Correlator struct {
	// Pattern is the hard bit pattern to correlate (the 32-bit WazaBee
	// Access Address, or an 802.15.4 preamble window).
	Pattern []byte
	// MaxErrors is the tolerated mismatch count for a candidate to
	// qualify.
	MaxErrors int
	// SPS is the number of samples per symbol; the correlator tracks
	// one candidate search per sampling phase.
	SPS int

	pool   *BufferPool
	incs   []float64
	phases []phaseState
}

// phaseState is the per-sampling-phase carry-over state.
type phaseState struct {
	sums []float64
	bits []byte
	// scan is the next candidate offset (symbol index) to evaluate.
	scan int
	// best candidate so far: qualifying iff has.
	bestPos, bestErrs int
	has               bool
}

// NewCorrelator builds a correlator over pool-backed buffers. pool nil
// falls back to the shared pool.
func NewCorrelator(pool *BufferPool, pattern []byte, maxErrors, sps int) *Correlator {
	pool = Or(pool)
	c := &Correlator{
		Pattern:   pattern,
		MaxErrors: maxErrors,
		SPS:       sps,
		pool:      pool,
		incs:      pool.F64(4096),
		phases:    make([]phaseState, sps),
	}
	for p := range c.phases {
		c.phases[p] = phaseState{
			sums:     pool.F64(512),
			bits:     pool.Bits(512),
			bestErrs: maxErrors + 1,
		}
	}
	return c
}

// Name implements Stage.
func (c *Correlator) Name() string { return "aa-correlate" }

// Reset implements Stage: it drops every retained increment and
// candidate while keeping buffer capacity.
func (c *Correlator) Reset() {
	c.incs = c.incs[:0]
	for p := range c.phases {
		ps := &c.phases[p]
		ps.sums = ps.sums[:0]
		ps.bits = ps.bits[:0]
		ps.scan = 0
		ps.bestPos, ps.bestErrs, ps.has = 0, c.MaxErrors+1, false
	}
}

// Close returns the stage's buffers to the pool. The correlator must
// not be used afterwards.
func (c *Correlator) Close() {
	c.pool.PutF64(c.incs)
	c.incs = nil
	for p := range c.phases {
		c.pool.PutF64(c.phases[p].sums)
		c.pool.PutBits(c.phases[p].bits)
		c.phases[p].sums, c.phases[p].bits = nil, nil
	}
}

// Process appends a chunk of phase increments and advances the
// per-phase symbol integration and pattern scans.
func (c *Correlator) Process(incs []float64) {
	c.incs = append(c.incs, incs...)
	c.extend()
}

// extend grows every phase's symbol sums/bits to cover the retained
// increments and advances its candidate scan.
func (c *Correlator) extend() {
	sps := c.SPS
	for p := range c.phases {
		ps := &c.phases[p]
		// Complete symbol windows available at this phase. The inner
		// summation order matches dsp.IntegrateSymbols exactly so the
		// floating-point results are bit-identical.
		if p < len(c.incs) {
			n := (len(c.incs) - p) / sps
			for k := len(ps.sums); k < n; k++ {
				var sum float64
				base := p + k*sps
				for i := 0; i < sps; i++ {
					sum += c.incs[base+i]
				}
				ps.sums = append(ps.sums, sum)
				if sum > 0 {
					ps.bits = append(ps.bits, 1)
				} else {
					ps.bits = append(ps.bits, 0)
				}
			}
		}
		c.scanPhase(ps)
	}
}

// scanPhase advances the candidate search over newly available windows,
// replicating dsp.FindPattern: ascending offsets, a candidate must
// strictly beat the best so far (initially MaxErrors), and the scan
// freezes after a perfect match.
func (c *Correlator) scanPhase(ps *phaseState) {
	if ps.has && ps.bestErrs == 0 {
		return
	}
	pat := c.Pattern
	for off := ps.scan; off+len(pat) <= len(ps.bits); off++ {
		limit := ps.bestErrs - 1
		errs := 0
		for i, pb := range pat {
			if ps.bits[off+i] != pb {
				errs++
				if errs > limit {
					break
				}
			}
		}
		if errs <= limit {
			ps.bestErrs = errs
			ps.bestPos = off
			ps.has = true
			if errs == 0 {
				ps.scan = off + 1
				return
			}
		}
		ps.scan = off + 1
	}
}

// Candidate is the correlator's current synchronisation decision.
type Candidate struct {
	// Phase is the winning sampling phase, Pos the symbol offset of the
	// pattern within that phase's bit stream.
	Phase, Pos int
	// Errors is the hard mismatch count inside the pattern window,
	// Score the soft correlation of the window.
	Errors int
	Score  float64
}

// Best returns the current cross-phase winner, ranked by soft
// correlation with ties resolving to the lowest phase — the same
// decision the one-shot receiver makes over the data seen so far.
func (c *Correlator) Best() (Candidate, bool) {
	var best Candidate
	found := false
	for p := range c.phases {
		ps := &c.phases[p]
		if !ps.has {
			continue
		}
		score, ok := dsp.SoftScore(ps.sums, c.Pattern, ps.bestPos)
		if !ok {
			continue
		}
		if !found || score > best.Score {
			best = Candidate{Phase: p, Pos: ps.bestPos, Errors: ps.bestErrs, Score: score}
			found = true
		}
	}
	return best, found
}

// Sums exposes a phase's symbol sums (read-only; valid until the next
// Process, Compact or Reset).
func (c *Correlator) Sums(phase int) []float64 { return c.phases[phase].sums }

// Len returns the number of retained increments.
func (c *Correlator) Len() int { return len(c.incs) }

// Compact drops the first n retained increments and re-anchors every
// phase to the new origin, reprocessing the retained tail in place. The
// receiver calls it after consuming a decoded frame, so buffer growth
// is bounded by the frame length rather than the stream length.
func (c *Correlator) Compact(n int) {
	if n <= 0 {
		return
	}
	if n >= len(c.incs) {
		c.Reset()
		return
	}
	kept := copy(c.incs, c.incs[n:])
	c.incs = c.incs[:kept]
	for p := range c.phases {
		ps := &c.phases[p]
		ps.sums = ps.sums[:0]
		ps.bits = ps.bits[:0]
		ps.scan = 0
		ps.bestPos, ps.bestErrs, ps.has = 0, c.MaxErrors+1, false
	}
	c.extend()
}
