package dsp

import (
	"fmt"
	"math"
	"math/rand"
)

// AddAWGN adds complex white Gaussian noise to the signal in place such
// that the resulting signal-to-noise ratio is snrDB relative to the current
// signal power. rnd must be non-nil so experiments stay reproducible.
func AddAWGN(s IQ, snrDB float64, rnd *rand.Rand) error {
	if rnd == nil {
		return fmt.Errorf("dsp: nil random source")
	}
	p := s.Power()
	if p == 0 {
		return nil
	}
	noisePower := p / math.Pow(10, snrDB/10)
	sigma := math.Sqrt(noisePower / 2)
	for i := range s {
		s[i] += complex(rnd.NormFloat64()*sigma, rnd.NormFloat64()*sigma)
	}
	return nil
}

// NoiseFloor returns a buffer of n pure-noise samples with the given total
// noise power, modelling the receiver listening to an idle channel.
func NoiseFloor(n int, power float64, rnd *rand.Rand) (IQ, error) {
	if rnd == nil {
		return nil, fmt.Errorf("dsp: nil random source")
	}
	if n < 0 {
		return nil, fmt.Errorf("dsp: negative sample count %d", n)
	}
	return NoiseFloorInto(make(IQ, 0, n), n, power, rnd)
}

// NoiseFloorInto appends n pure-noise samples with the given total noise
// power to dst, reusing dst's capacity — the pooled-buffer form of
// NoiseFloor.
func NoiseFloorInto(dst IQ, n int, power float64, rnd *rand.Rand) (IQ, error) {
	if rnd == nil {
		return nil, fmt.Errorf("dsp: nil random source")
	}
	if n < 0 {
		return nil, fmt.Errorf("dsp: negative sample count %d", n)
	}
	sigma := math.Sqrt(power / 2)
	for i := 0; i < n; i++ {
		dst = append(dst, complex(rnd.NormFloat64()*sigma, rnd.NormFloat64()*sigma))
	}
	return dst, nil
}

// BurstNoise overlays band-limited-style noise bursts onto the signal in
// place. Each sample position is covered by a burst with the given duty
// cycle; bursts have geometric length with mean burstLen samples and
// amplitude sigma per component. This is the interference model used for
// the co-channel WiFi traffic of the paper's experimental environment: WiFi
// frames are orders of magnitude wider than a Zigbee channel, so within the
// victim channel they appear as wideband noise bursts gated by the WiFi
// duty cycle.
func BurstNoise(s IQ, dutyCycle float64, burstLen int, power float64, rnd *rand.Rand) error {
	if rnd == nil {
		return fmt.Errorf("dsp: nil random source")
	}
	if dutyCycle <= 0 || power <= 0 || len(s) == 0 {
		return nil
	}
	if dutyCycle > 1 {
		dutyCycle = 1
	}
	if burstLen < 1 {
		burstLen = 1
	}
	sigma := math.Sqrt(power / 2)
	// Alternate idle gaps and bursts so that the expected fraction of
	// samples inside a burst equals dutyCycle.
	meanGap := float64(burstLen) * (1 - dutyCycle) / dutyCycle
	i := 0
	for i < len(s) {
		gap := int(rnd.ExpFloat64() * meanGap)
		i += gap
		length := 1 + int(rnd.ExpFloat64()*float64(burstLen-1))
		for j := 0; j < length && i < len(s); j, i = j+1, i+1 {
			s[i] += complex(rnd.NormFloat64()*sigma, rnd.NormFloat64()*sigma)
		}
	}
	return nil
}
