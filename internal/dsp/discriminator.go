package dsp

import (
	"math"
	"math/cmplx"
)

// Discriminate converts a complex-baseband signal into instantaneous phase
// increments: out[i] = arg(s[i+1]·conj(s[i])), in radians per sample. This
// is the classic quadrature frequency discriminator every FSK receiver
// reduces to; the sign of the increment tells the rotation direction of the
// signal vector in the complex plane (Figure 1 of the paper).
//
// The output has len(s)-1 samples (zero-length input yields nil).
func Discriminate(s IQ) []float64 {
	if len(s) < 2 {
		return nil
	}
	return DiscriminateInto(make([]float64, 0, len(s)-1), s)
}

// DiscriminateInto appends the phase increments of s to dst and returns
// the extended slice, reusing dst's capacity. It is the allocation-free
// form of Discriminate for pooled buffers and streaming chunks.
func DiscriminateInto(dst []float64, s IQ) []float64 {
	for i := 0; i+1 < len(s); i++ {
		dst = append(dst, cmplx.Phase(s[i+1]*cmplx.Conj(s[i])))
	}
	return dst
}

// DiscriminateAcross appends the phase increment across a chunk
// boundary — from carry (the last sample of the previous chunk) into
// next (the first sample of the new chunk) — producing exactly the
// value Discriminate would have computed at that position over the
// joined buffer.
func DiscriminateAcross(dst []float64, carry, next complex128) []float64 {
	return append(dst, cmplx.Phase(next*cmplx.Conj(carry)))
}

// IntegrateSymbols sums phase increments over consecutive windows of sps
// samples starting at offset, producing one accumulated phase change per
// symbol period. Incomplete trailing windows are dropped.
func IntegrateSymbols(increments []float64, offset, sps int) []float64 {
	if sps < 1 || offset < 0 || offset >= len(increments) {
		return nil
	}
	n := (len(increments) - offset) / sps
	return IntegrateSymbolsInto(make([]float64, 0, n), increments, offset, sps)
}

// IntegrateSymbolsInto is the appending, allocation-free form of
// IntegrateSymbols: it sums complete sps-sample windows of increments
// starting at offset and appends one value per window to dst.
func IntegrateSymbolsInto(dst []float64, increments []float64, offset, sps int) []float64 {
	if sps < 1 || offset < 0 || offset >= len(increments) {
		return dst
	}
	n := (len(increments) - offset) / sps
	for k := 0; k < n; k++ {
		var sum float64
		base := offset + k*sps
		for i := 0; i < sps; i++ {
			sum += increments[base+i]
		}
		dst = append(dst, sum)
	}
	return dst
}

// SliceBits converts accumulated per-symbol phase changes into hard bit
// decisions: positive rotation (counter-clockwise) decodes as 1, negative as
// 0, matching the FSK convention in the paper.
func SliceBits(phases []float64) []byte {
	return SliceBitsInto(make([]byte, 0, len(phases)), phases)
}

// SliceBitsInto is the appending, allocation-free form of SliceBits.
func SliceBitsInto(dst []byte, phases []float64) []byte {
	for _, p := range phases {
		if p > 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// MeanFrequency estimates the average phase increment per sample, used for
// carrier-frequency-offset estimation over a known constant-envelope
// preamble with balanced bit content.
func MeanFrequency(increments []float64) float64 {
	if len(increments) == 0 {
		return 0
	}
	var sum float64
	for _, v := range increments {
		sum += v
	}
	return sum / float64(len(increments))
}

// UnwrapPhase returns the cumulative phase trajectory of the signal,
// unwrapped so that successive samples never jump by more than π. Useful
// for waveform inspection (Figures 2 and 3).
func UnwrapPhase(s IQ) []float64 {
	if len(s) == 0 {
		return nil
	}
	out := make([]float64, len(s))
	out[0] = cmplx.Phase(s[0])
	for i := 1; i < len(s); i++ {
		d := cmplx.Phase(s[i] * cmplx.Conj(s[i-1]))
		out[i] = out[i-1] + d
	}
	return out
}

// PhaseRMSE returns the root-mean-square difference between two phase
// trajectories after removing the mean offset (absolute carrier phase is
// irrelevant to a noncoherent receiver). The trajectories must have equal
// length; shorter one truncates the comparison.
func PhaseRMSE(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var mean float64
	for i := 0; i < n; i++ {
		mean += a[i] - b[i]
	}
	mean /= float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i] - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}
