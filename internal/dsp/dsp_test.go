package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func tone(n int, cyclesPerSample float64) IQ {
	s := make(IQ, n)
	for i := range s {
		s[i] = cmplx.Exp(complex(0, 2*math.Pi*cyclesPerSample*float64(i)))
	}
	return s
}

func TestPowerOfUnitTone(t *testing.T) {
	s := tone(256, 0.1)
	if p := s.Power(); math.Abs(p-1) > 1e-12 {
		t.Errorf("unit tone power = %g, want 1", p)
	}
	var empty IQ
	if p := empty.Power(); p != 0 {
		t.Errorf("empty power = %g, want 0", p)
	}
}

func TestScale(t *testing.T) {
	s := tone(64, 0.05)
	s.Scale(2)
	if p := s.Power(); math.Abs(p-4) > 1e-12 {
		t.Errorf("scaled power = %g, want 4", p)
	}
}

func TestAddOffsetAndClipping(t *testing.T) {
	base := make(IQ, 10)
	burst := IQ{1, 1, 1}
	base.Add(burst, 8) // last sample clipped
	if base[8] != 1 || base[9] != 1 {
		t.Error("in-range samples not added")
	}
	base2 := make(IQ, 10)
	base2.Add(burst, -2) // first two samples clipped
	if base2[0] != 1 {
		t.Error("tail of early-offset burst not added")
	}
	if base2[1] != 0 {
		t.Error("out-of-range burst samples leaked")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := tone(8, 0.1)
	c := s.Clone()
	c[0] = 0
	if s[0] == 0 {
		t.Error("Clone aliases its input")
	}
}

func TestMixFrequencyShiftsTone(t *testing.T) {
	// A tone at f mixed by df must discriminate to f+df per sample.
	s := tone(512, 0.02)
	s.MixFrequency(0.03)
	incs := Discriminate(s)
	got := MeanFrequency(incs)
	want := 2 * math.Pi * 0.05
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("mean phase increment = %g, want %g", got, want)
	}
}

func TestRotatePhasePreservesDiscriminator(t *testing.T) {
	s := tone(128, 0.02)
	before := Discriminate(s.Clone())
	s.RotatePhase(1.234)
	after := Discriminate(s)
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9 {
			t.Fatalf("phase rotation changed increment %d: %g vs %g", i, before[i], after[i])
		}
	}
}

func TestPad(t *testing.T) {
	s := IQ{1, 2}
	p, err := s.Pad(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 7 || p[0] != 0 || p[2] != 1 || p[3] != 2 || p[6] != 0 {
		t.Errorf("Pad = %v", p)
	}
	if _, err := s.Pad(-1, 0); err == nil {
		t.Error("expected error for negative padding")
	}
}

func TestEnvelopeDeviationOfTone(t *testing.T) {
	s := tone(256, 0.07)
	if d := s.EnvelopeDeviation(); d > 1e-12 {
		t.Errorf("tone envelope deviation = %g, want ~0", d)
	}
}

func TestGaussianPulseDisabledIsRect(t *testing.T) {
	pulse, err := GaussianPulse(0, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pulse) != 8 {
		t.Fatalf("rect pulse length = %d, want 8", len(pulse))
	}
	for i, v := range pulse {
		if v != 1 {
			t.Errorf("rect pulse[%d] = %g, want 1", i, v)
		}
	}
}

func TestGaussianPulseProperties(t *testing.T) {
	const sps = 8
	pulse, err := GaussianPulse(0.5, sps, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Integral normalised to sps.
	var sum float64
	for _, v := range pulse {
		sum += v
	}
	if math.Abs(sum-sps) > 1e-9 {
		t.Errorf("pulse integral = %g, want %d", sum, sps)
	}
	// Symmetric.
	for i := 0; i < len(pulse)/2; i++ {
		if math.Abs(pulse[i]-pulse[len(pulse)-1-i]) > 1e-9 {
			t.Fatalf("pulse not symmetric at %d", i)
		}
	}
	// Peak in the middle and below the rectangular amplitude spread over
	// more samples.
	mid := pulse[len(pulse)/2]
	for _, v := range pulse {
		if v > mid+1e-9 {
			t.Fatal("pulse peak is not central")
		}
	}
	if mid >= 1 {
		t.Errorf("Gaussian-filtered peak = %g, want < 1 (spread out)", mid)
	}
}

func TestGaussianPulseErrors(t *testing.T) {
	if _, err := GaussianPulse(0.5, 0, 2); err == nil {
		t.Error("expected error for sps=0")
	}
	if _, err := GaussianPulse(0.5, 8, 0); err == nil {
		t.Error("expected error for span=0")
	}
}

func TestHalfSinePulse(t *testing.T) {
	const sps = 8
	pulse, err := HalfSinePulse(sps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pulse) != 2*sps {
		t.Fatalf("half-sine length = %d, want %d", len(pulse), 2*sps)
	}
	if pulse[0] != 0 {
		t.Errorf("half-sine starts at %g, want 0", pulse[0])
	}
	if math.Abs(pulse[sps]-1) > 1e-12 {
		t.Errorf("half-sine midpoint = %g, want 1", pulse[sps])
	}
	if _, err := HalfSinePulse(0); err == nil {
		t.Error("expected error for sps=0")
	}
}

func TestDiscriminateTone(t *testing.T) {
	s := tone(100, 0.01)
	incs := Discriminate(s)
	if len(incs) != 99 {
		t.Fatalf("discriminator output length = %d, want 99", len(incs))
	}
	want := 2 * math.Pi * 0.01
	for i, v := range incs {
		if math.Abs(v-want) > 1e-9 {
			t.Fatalf("increment[%d] = %g, want %g", i, v, want)
		}
	}
	if Discriminate(nil) != nil {
		t.Error("Discriminate(nil) should be nil")
	}
}

func TestIntegrateSymbolsAndSlice(t *testing.T) {
	incs := []float64{1, 1, -1, -1, 1, 1, 0.5}
	syms := IntegrateSymbols(incs, 0, 2)
	want := []float64{2, -2, 2}
	if len(syms) != len(want) {
		t.Fatalf("symbol count = %d, want %d", len(syms), len(want))
	}
	for i := range want {
		if math.Abs(syms[i]-want[i]) > 1e-12 {
			t.Errorf("symbol[%d] = %g, want %g", i, syms[i], want[i])
		}
	}
	bits := SliceBits(syms)
	if bits[0] != 1 || bits[1] != 0 || bits[2] != 1 {
		t.Errorf("SliceBits = %v, want [1 0 1]", bits)
	}
	if IntegrateSymbols(incs, 99, 2) != nil {
		t.Error("out-of-range offset should return nil")
	}
	if IntegrateSymbols(incs, 0, 0) != nil {
		t.Error("sps=0 should return nil")
	}
}

func TestUnwrapPhaseMonotoneTone(t *testing.T) {
	s := tone(200, 0.1)
	ph := UnwrapPhase(s)
	step := 2 * math.Pi * 0.1
	for i := 1; i < len(ph); i++ {
		if math.Abs(ph[i]-ph[i-1]-step) > 1e-9 {
			t.Fatalf("unwrapped step at %d = %g, want %g", i, ph[i]-ph[i-1], step)
		}
	}
	if UnwrapPhase(nil) != nil {
		t.Error("UnwrapPhase(nil) should be nil")
	}
}

func TestPhaseRMSEIgnoresConstantOffset(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{5, 6, 7, 8}
	if r := PhaseRMSE(a, b); r > 1e-12 {
		t.Errorf("RMSE with constant offset = %g, want 0", r)
	}
	c := []float64{0, 1, 2, 4}
	if r := PhaseRMSE(a, c); r <= 0 {
		t.Errorf("RMSE of differing trajectories = %g, want > 0", r)
	}
	if r := PhaseRMSE(nil, nil); r != 0 {
		t.Errorf("RMSE of empty = %g, want 0", r)
	}
}

func TestAddAWGNReachesTargetSNR(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	s := tone(200000, 0.01)
	clean := s.Clone()
	if err := AddAWGN(s, 10, rnd); err != nil {
		t.Fatal(err)
	}
	var noisePower float64
	for i := range s {
		d := s[i] - clean[i]
		noisePower += real(d)*real(d) + imag(d)*imag(d)
	}
	noisePower /= float64(len(s))
	gotSNR := 10 * math.Log10(1/noisePower)
	if math.Abs(gotSNR-10) > 0.2 {
		t.Errorf("measured SNR = %g dB, want 10 dB", gotSNR)
	}
}

func TestAddAWGNNilRand(t *testing.T) {
	if err := AddAWGN(make(IQ, 4), 10, nil); err == nil {
		t.Error("expected error for nil rand")
	}
}

func TestAddAWGNSilentSignal(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	s := make(IQ, 16)
	if err := AddAWGN(s, 10, rnd); err != nil {
		t.Fatal(err)
	}
	if s.Power() != 0 {
		t.Error("AWGN added to an all-zero signal (undefined SNR)")
	}
}

func TestNoiseFloor(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	n, err := NoiseFloor(100000, 0.25, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if p := n.Power(); math.Abs(p-0.25) > 0.01 {
		t.Errorf("noise floor power = %g, want 0.25", p)
	}
	if _, err := NoiseFloor(-1, 1, rnd); err == nil {
		t.Error("expected error for negative count")
	}
	if _, err := NoiseFloor(1, 1, nil); err == nil {
		t.Error("expected error for nil rand")
	}
}

func TestBurstNoiseDutyCycle(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	s := make(IQ, 200000)
	for i := range s {
		s[i] = 1
	}
	if err := BurstNoise(s, 0.4, 400, 1.0, rnd); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for _, v := range s {
		if v != 1 {
			hit++
		}
	}
	frac := float64(hit) / float64(len(s))
	if frac < 0.25 || frac > 0.55 {
		t.Errorf("burst coverage = %.2f, want ≈ 0.4", frac)
	}
}

func TestBurstNoiseNoOpCases(t *testing.T) {
	s := make(IQ, 16)
	rnd := rand.New(rand.NewSource(4))
	if err := BurstNoise(s, 0, 10, 1, rnd); err != nil {
		t.Fatal(err)
	}
	if err := BurstNoise(s, 0.5, 10, 0, rnd); err != nil {
		t.Fatal(err)
	}
	for _, v := range s {
		if v != 0 {
			t.Fatal("no-op BurstNoise modified the signal")
		}
	}
	if err := BurstNoise(s, 0.5, 10, 1, nil); err == nil {
		t.Error("expected error for nil rand")
	}
}

func TestBitCorrelation(t *testing.T) {
	stream := []byte{1, 0, 1, 1, 0, 0, 1}
	pattern := []byte{1, 1, 0}
	if got := BitCorrelation(stream, pattern, 2); got != 3 {
		t.Errorf("correlation at 2 = %d, want 3", got)
	}
	if got := BitCorrelation(stream, pattern, 5); got != -1 {
		t.Errorf("out-of-range correlation = %d, want -1", got)
	}
	if got := BitCorrelation(stream, pattern, -1); got != -1 {
		t.Errorf("negative-offset correlation = %d, want -1", got)
	}
}

func TestFindPattern(t *testing.T) {
	stream := []byte{0, 0, 1, 0, 1, 1, 0, 1}
	pattern := []byte{1, 0, 1, 1}
	off, errs, ok := FindPattern(stream, pattern, 0)
	if !ok || off != 2 || errs != 0 {
		t.Errorf("FindPattern = (%d,%d,%v), want (2,0,true)", off, errs, ok)
	}

	// One corrupted bit still locks with maxErrors=1.
	stream[4] = 0
	off, errs, ok = FindPattern(stream, pattern, 1)
	if !ok || off != 2 || errs != 1 {
		t.Errorf("FindPattern tolerant = (%d,%d,%v), want (2,1,true)", off, errs, ok)
	}
	if _, _, ok := FindPattern(stream, pattern, 0); ok {
		t.Error("strict FindPattern should fail on a corrupted stream")
	}
	if _, _, ok := FindPattern([]byte{1}, pattern, 0); ok {
		t.Error("pattern longer than stream should not match")
	}
	if _, _, ok := FindPattern(stream, nil, 0); ok {
		t.Error("empty pattern should not match")
	}
}

func TestNormalizedCrossCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	scaled := []float64{2, 4, 6, 8}
	if c := NormalizedCrossCorrelation(a, scaled); math.Abs(c-1) > 1e-12 {
		t.Errorf("NCC of scaled copy = %g, want 1", c)
	}
	neg := []float64{-1, -2, -3, -4}
	if c := NormalizedCrossCorrelation(a, neg); math.Abs(c+1) > 1e-12 {
		t.Errorf("NCC of negated copy = %g, want -1", c)
	}
	if c := NormalizedCrossCorrelation(nil, a); c != 0 {
		t.Errorf("NCC with empty input = %g, want 0", c)
	}
	if c := NormalizedCrossCorrelation(a, []float64{0, 0, 0, 0}); c != 0 {
		t.Errorf("NCC with zero signal = %g, want 0", c)
	}
}

func TestNCCProperty(t *testing.T) {
	// |NCC| ≤ 1 for random vectors (Cauchy–Schwarz).
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		a := make([]float64, 32)
		b := make([]float64, 32)
		for i := range a {
			a[i] = rnd.NormFloat64()
			b[i] = rnd.NormFloat64()
		}
		c := NormalizedCrossCorrelation(a, b)
		return c >= -1-1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
