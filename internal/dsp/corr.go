package dsp

import "math"

// BitCorrelation counts matching positions between pattern and the window
// of stream starting at offset. It returns -1 when the window does not fit.
func BitCorrelation(stream, pattern []byte, offset int) int {
	if offset < 0 || offset+len(pattern) > len(stream) {
		return -1
	}
	matches := 0
	for i, p := range pattern {
		if stream[offset+i] == p {
			matches++
		}
	}
	return matches
}

// FindPattern scans stream for the offset with the highest correlation
// against pattern, allowing up to maxErrors mismatched bits. It returns the
// best offset and the number of mismatches, or ok=false when no window
// qualifies. Ties resolve to the earliest offset, which matches how a
// hardware correlator triggers on the first address match.
//
// Each window aborts as soon as it cannot beat the best qualifying match
// so far; with random pre-frame noise this makes the scan roughly
// constant-work per offset regardless of pattern length.
func FindPattern(stream, pattern []byte, maxErrors int) (offset, errors int, ok bool) {
	if len(pattern) == 0 || len(pattern) > len(stream) {
		return 0, 0, false
	}
	bestOffset, bestErrors := -1, maxErrors+1
	for off := 0; off+len(pattern) <= len(stream); off++ {
		limit := bestErrors - 1 // must strictly beat the best so far
		errs := 0
		for i, p := range pattern {
			if stream[off+i] != p {
				errs++
				if errs > limit {
					break
				}
			}
		}
		if errs <= limit {
			bestErrors = errs
			bestOffset = off
			if errs == 0 {
				break
			}
		}
	}
	if bestOffset < 0 {
		return 0, 0, false
	}
	return bestOffset, bestErrors, true
}

// SoftScore computes the soft correlation Σ sums[pos+i]·(2·pattern[i]−1)
// of a binary pattern against per-symbol phase accumulations at a given
// offset. Receivers use it to rank hard-decision synchronisation
// candidates across sampling phases: only the correctly timed phase has a
// fully open eye, so its score dominates coincidental hard matches at
// wrong phases. Returns ok=false when the window does not fit.
func SoftScore(sums []float64, pattern []byte, pos int) (score float64, ok bool) {
	if pos < 0 || len(pattern) == 0 || pos+len(pattern) > len(sums) {
		return 0, false
	}
	for i, p := range pattern {
		if p == 1 {
			score += sums[pos+i]
		} else {
			score -= sums[pos+i]
		}
	}
	return score, true
}

// NormalizedCrossCorrelation returns the zero-lag normalized cross
// correlation of two real sequences (1.0 for identical shapes up to
// positive scaling). Sequences shorter than the other truncate the
// comparison; empty input returns 0.
func NormalizedCrossCorrelation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
