// Package calib fits the calibration tables behind the symbol and frame
// fidelity tiers of internal/radio. The IQ tier is the ground truth: the
// fitter runs real frames through waveform synthesis, the simulated
// medium and the real demodulators across a grid of operating points —
// both WazaBee chip models on both sides, an SNR sweep bracketing the
// Table III operating band, carrier offsets up to the crystal budget and
// clean as well as WiFi-degraded channels — and records, per grid cell,
// the sync-failure rate and the per-symbol despreading distance
// histogram. The symbol tier replays those distributions through the
// real despreader decision logic; the frame tier collapses them to a
// closed-form per-frame probability.
//
// cmd/calibrate is the offline entry point that regenerates the
// checked-in table (internal/radio/caldata/table.json) and verifies it
// for drift in CI.
package calib

import (
	"fmt"
	"math"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

// calFreqMHz is the carrier the calibration frames air on. The medium's
// physics (noise, CFO mixing, burst timing) do not depend on the
// absolute carrier, only on offsets, so one representative mid-band
// frequency suffices; WiFi interferers are synthesised at whatever
// spectral offset produces the target overlap weight.
const calFreqMHz = 2440.0

// snrGrid brackets the Table III operating band (link SNR after the
// receiver noise figure is 7–9 dB there) densely around the waterfall
// knee, with anchors deep in the always-fails and always-decodes
// regimes so edge clamping saturates cleanly.
var snrGrid = []float64{-10, -3, -1, 0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 14, 28}

// wifiGrid is the interference-weight axis: a clean channel, a mildly
// touched one, and a channel sitting almost on top of a WiFi centre
// (Table III's channels 17–18 and 21–23 map to ~0.2–0.96).
var wifiGrid = []float64{0, 0.25, 0.95}

// Options parameterises a fit.
type Options struct {
	// SamplesPerChip is the IQ oversampling factor (8 matches the
	// experiments).
	SamplesPerChip int
	// FramesPerCell is how many ground-truth frames each grid cell
	// averages over.
	FramesPerCell int
	// Seed makes the fit reproducible; cmd/calibrate's drift check
	// relies on byte-identical regeneration.
	Seed int64
	// Progress, when non-nil, is called after each finished profile.
	Progress func(profile string, done, total int)
}

// DefaultOptions matches the checked-in table.
func DefaultOptions() Options {
	return Options{SamplesPerChip: 8, FramesPerCell: 28, Seed: 1}
}

// endpoints is the modem pair of one calibration profile.
type endpoints struct {
	modulate   func(*ieee802154.PPDU) (dsp.IQ, error)
	demodulate func(dsp.IQ) (*ieee802154.Demodulated, error)
}

// profileSpec describes one profile's link flavour and grid axes.
type profileSpec struct {
	name string
	cfo  []float64
	wifi []float64
	// build constructs the modem pair (called once per profile).
	build func(sps int, reg *obs.Registry) (endpoints, error)
}

// nativeEndpoints is an O-QPSK modem on both ends (the RZUSBStick role,
// and what every node of the mesh simulator is).
func nativeEndpoints(sps int, reg *obs.Registry) (endpoints, error) {
	phy, err := chip.RZUSBStick().NewZigbeePHY(sps)
	if err != nil {
		return endpoints{}, err
	}
	phy.Obs = reg
	return endpoints{
		modulate:   phy.Modulate,
		demodulate: phy.Demodulate,
	}, nil
}

// receptionEndpoints: legitimate 802.15.4 transmitter, diverted BLE
// chip receiving (Table III's reception column).
func receptionEndpoints(model chip.Model) func(int, *obs.Registry) (endpoints, error) {
	return func(sps int, reg *obs.Registry) (endpoints, error) {
		phy, err := chip.RZUSBStick().NewZigbeePHY(sps)
		if err != nil {
			return endpoints{}, err
		}
		phy.Obs = reg
		rx, err := model.NewWazaBeeReceiver(sps)
		if err != nil {
			return endpoints{}, err
		}
		rx.Obs = reg
		return endpoints{modulate: phy.Modulate, demodulate: rx.Receive}, nil
	}
}

// transmissionEndpoints: diverted BLE chip transmitting, legitimate
// 802.15.4 radio receiving (Table III's transmission column).
func transmissionEndpoints(model chip.Model) func(int, *obs.Registry) (endpoints, error) {
	return func(sps int, reg *obs.Registry) (endpoints, error) {
		tx, err := model.NewWazaBeeTransmitter(sps)
		if err != nil {
			return endpoints{}, err
		}
		tx.Obs = reg
		phy, err := chip.RZUSBStick().NewZigbeePHY(sps)
		if err != nil {
			return endpoints{}, err
		}
		phy.Obs = reg
		return endpoints{modulate: tx.Modulate, demodulate: phy.Demodulate}, nil
	}
}

// profileSpecs enumerates the fitted profiles: the native O-QPSK link of
// the mesh simulator plus both WazaBee chips on both sides. The CFO axis
// tops out at each pairing's worst-case crystal budget (1 ppm at f MHz
// is f Hz, and the experiment draws from ±(txPPM+rxPPM)).
func profileSpecs() []profileSpec {
	stick := chip.RZUSBStick()
	specs := []profileSpec{{
		name: radio.ProfileOQPSK,
		// The mesh simulator models co-located identical radios; its
		// links carry no CFO, so one axis point suffices (lookups clamp).
		cfo:   []float64{0},
		wifi:  wifiGrid,
		build: nativeEndpoints,
	}}
	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		maxCFO := (model.CrystalPPM + stick.CrystalPPM) * 2480 // worst channel
		for _, side := range []string{"reception", "transmission"} {
			build := receptionEndpoints(model)
			if side == "transmission" {
				build = transmissionEndpoints(model)
			}
			specs = append(specs, profileSpec{
				name:  radio.CalProfileName(model.Name, side),
				cfo:   []float64{0, maxCFO / 2, maxCFO},
				wifi:  wifiGrid,
				build: build,
			})
		}
	}
	return specs
}

// synthInterferer builds a WiFi interferer whose overlap weight at the
// calibration carrier equals the target axis value: the reference duty
// cycle and power of the Table III environment, centred at the spectral
// offset that yields the requested (1−x²)³ overlap.
func synthInterferer(weight float64, sps int) radio.WiFiInterferer {
	const half = 11.0 // MHz, 22 MHz WiFi bandwidth
	// Overlap = (1−(df/half)²)³ = weight  ⇒  df = half·sqrt(1−weight^⅓).
	df := half * math.Sqrt(1-math.Cbrt(weight))
	return radio.WiFiInterferer{
		CenterMHz:    calFreqMHz - df,
		BandwidthMHz: 22,
		DutyCycle:    0.005,
		Power:        6.0,
		BurstSamples: sps * 100,
	}
}

// Fit runs the calibration pass and returns the fitted table.
func Fit(opts Options) (*radio.CalTable, error) {
	if opts.SamplesPerChip < 1 {
		return nil, fmt.Errorf("calib: samples per chip %d < 1", opts.SamplesPerChip)
	}
	if opts.FramesPerCell < 1 {
		return nil, fmt.Errorf("calib: frames per cell %d < 1", opts.FramesPerCell)
	}
	specs := profileSpecs()
	table := &radio.CalTable{
		Version:        1,
		SamplesPerChip: opts.SamplesPerChip,
		FramesPerCell:  opts.FramesPerCell,
		Seed:           opts.Seed,
		Profiles:       make(map[string]*radio.CalProfile, len(specs)),
	}
	for pi, spec := range specs {
		prof, err := fitProfile(opts, pi, spec)
		if err != nil {
			return nil, fmt.Errorf("calib: profile %s: %w", spec.name, err)
		}
		table.Profiles[spec.name] = prof
		if opts.Progress != nil {
			opts.Progress(spec.name, pi+1, len(specs))
		}
	}
	if err := table.Validate(); err != nil {
		return nil, err
	}
	return table, nil
}

func fitProfile(opts Options, profIdx int, spec profileSpec) (*radio.CalProfile, error) {
	// All pipeline telemetry of the fit lands in a private registry the
	// fitter discards: calibration must not pollute process metrics.
	reg := obs.NewRegistry()
	ep, err := spec.build(opts.SamplesPerChip, reg)
	if err != nil {
		return nil, err
	}

	// The calibration frames mirror the Table III traffic (counter-tagged
	// sensor data frames). The waveforms depend only on the frame index,
	// so they are synthesised once and reused across every cell.
	sigs := make([]dsp.IQ, opts.FramesPerCell)
	for f := range sigs {
		hdr := ieee802154.NewDataFrame(uint8(f), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
			zigbee.DefaultSensor, zigbee.SensorPayload(uint16(f)), false)
		psdu, err := hdr.Encode()
		if err != nil {
			return nil, err
		}
		ppdu, err := ieee802154.NewPPDU(psdu)
		if err != nil {
			return nil, err
		}
		if sigs[f], err = ep.modulate(ppdu); err != nil {
			return nil, err
		}
	}

	prof := &radio.CalProfile{
		Name:  spec.name,
		SNRdB: append([]float64(nil), snrGrid...),
		CFOHz: append([]float64(nil), spec.cfo...),
		WiFi:  append([]float64(nil), spec.wifi...),
		Cells: make([]radio.CalCell, len(snrGrid)*len(spec.cfo)*len(spec.wifi)),
	}
	sampleRate := float64(opts.SamplesPerChip) * ieee802154.ChipRate
	for si, snr := range snrGrid {
		for ci, cfo := range spec.cfo {
			for wi, wifi := range spec.wifi {
				cell, err := fitCell(opts, reg, ep, sigs, sampleRate, profIdx, si, ci, wi, snr, cfo, wifi)
				if err != nil {
					return nil, err
				}
				prof.Cells[(si*len(spec.cfo)+ci)*len(spec.wifi)+wi] = cell
			}
		}
	}
	smoothProfile(prof)
	return prof, nil
}

// fitCell measures one grid cell: FramesPerCell independent frames, each
// over a fresh medium whose every draw flows from the cell-and-frame
// derived seed (the same isolation discipline as the Table III trials).
func fitCell(opts Options, reg *obs.Registry, ep endpoints, sigs []dsp.IQ, sampleRate float64,
	profIdx, si, ci, wi int, snr, cfo, wifi float64) (radio.CalCell, error) {
	fails := 0
	var hist [17]uint64
	var symbols uint64
	for f, sig := range sigs {
		seed := mixSeed(uint64(opts.Seed), uint64(profIdx), uint64(si), uint64(ci), uint64(wi), uint64(f))
		medium, err := radio.NewMedium(sampleRate, int64(seed))
		if err != nil {
			return radio.CalCell{}, err
		}
		medium.Obs = reg
		if wifi > 0 {
			medium.AddWiFi(synthInterferer(wifi, opts.SamplesPerChip))
		}
		link := radio.Link{
			SNRdB:       snr,
			CFOHz:       cfo,
			LeadSamples: 40 * opts.SamplesPerChip,
			LagSamples:  20 * opts.SamplesPerChip,
			// Receiver blocking is applied at lookup time (it scales the
			// weight axis), not baked into the cells.
			InterferenceRejectionDB: 0,
		}
		capture, err := medium.Deliver(sig, calFreqMHz, calFreqMHz, link)
		if err != nil {
			return radio.CalCell{}, err
		}
		dem, derr := ep.demodulate(capture)
		if derr != nil {
			// Sync failures, mid-frame aborts and quality-gate drops all
			// fold into SyncFail — the symbol tier must not re-apply the
			// gate on top.
			fails++
			continue
		}
		for d, n := range dem.ChipDistHist {
			hist[d] += uint64(n)
			symbols += uint64(n)
		}
	}

	cell := radio.CalCell{SyncFail: float64(fails) / float64(len(sigs))}
	if symbols == 0 {
		// Nothing decoded: the distance distribution is unobservable.
		// Pin it to the worst bucket so any interpolation toward this
		// cell degrades pessimistically; with SyncFail at 1 the symbol
		// draw never actually reaches it.
		cell.Dist[16] = 1
		return cell, nil
	}
	for d, n := range hist {
		cell.Dist[d] = float64(n) / float64(symbols)
	}
	return cell, nil
}

// smoothProfile enforces physical monotonicity along the SNR axis for
// each (CFO, WiFi) column: the sync-failure rate may not rise with SNR,
// and the per-symbol decode probability (the frame tier's functional of
// the distance distribution) may not fall. Finite per-cell sampling
// occasionally violates both by a hair; clamping to the neighbouring
// cell keeps interpolated success probabilities monotone, which the
// fidelity tiers' shape tests pin.
func smoothProfile(p *radio.CalProfile) {
	cell := func(si, ci, wi int) *radio.CalCell {
		return &p.Cells[(si*len(p.CFOHz)+ci)*len(p.WiFi)+wi]
	}
	symOK := func(c *radio.CalCell) float64 {
		s := 0.0
		for k, w := range c.Dist {
			s += w * radio.SymbolCorrectProb(k)
		}
		return s
	}
	for ci := range p.CFOHz {
		for wi := range p.WiFi {
			for si := 1; si < len(p.SNRdB); si++ {
				prev, cur := cell(si-1, ci, wi), cell(si, ci, wi)
				if cur.SyncFail > prev.SyncFail {
					cur.SyncFail = prev.SyncFail
				}
				if symOK(cur) < symOK(prev) {
					cur.Dist = prev.Dist
				}
			}
		}
	}
}

// mixSeed folds calibration coordinates into one well-mixed seed with
// the SplitMix64 finaliser chain (the repo-wide seed discipline).
func mixSeed(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

