package ids

import (
	"math/rand"
	"testing"

	"wazabee/internal/attack"
	"wazabee/internal/bitstream"
	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const testSPS = 8

func testMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := NewMonitor(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testPPDU(t *testing.T, payload []byte) *ieee802154.PPDU {
	t.Helper()
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	ppdu, err := ieee802154.NewPPDU(append(append([]byte{}, payload...), fcs[0], fcs[1]))
	if err != nil {
		t.Fatal(err)
	}
	return ppdu
}

func legitFrame(t *testing.T) dsp.IQ {
	t.Helper()
	phy, err := ieee802154.NewPHY(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ppdu := testPPDU(t, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	sig, err := phy.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(180, 120)
	if err != nil {
		t.Fatal(err)
	}
	return padded
}

func wazabeeFrame(t *testing.T, model chip.Model) dsp.IQ {
	t.Helper()
	tx, err := model.NewWazaBeeTransmitter(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ppdu := testPPDU(t, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	sig, err := tx.Modulate(ppdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := sig.Pad(180, 120)
	if err != nil {
		t.Fatal(err)
	}
	return padded
}

func TestAlertKindStrings(t *testing.T) {
	tests := []struct {
		kind AlertKind
		want string
	}{
		{AlertBLEFraming, "ble-framing"},
		{AlertModulationFingerprint, "modulation-fingerprint"},
		{AlertUnexpectedTraffic, "unexpected-traffic"},
		{AlertKind(9), "alert(9)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestInspectLegitimateFrameIsClean(t *testing.T) {
	m := testMonitor(t)
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		sig := legitFrame(t)
		if err := dsp.AddAWGN(sig, 18, rnd); err != nil {
			t.Fatal(err)
		}
		v, err := m.Inspect(sig)
		if err != nil {
			t.Fatal(err)
		}
		if !v.FrameSeen {
			t.Fatal("legitimate frame not seen")
		}
		if v.Suspicious() {
			t.Errorf("trial %d: legitimate frame flagged: %+v (EVM %.3f)", trial, v.Alerts, v.SoftEVM)
		}
	}
}

func TestInspectFlagsWazaBeeTransmitter(t *testing.T) {
	m := testMonitor(t)
	rnd := rand.New(rand.NewSource(2))
	for _, model := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		t.Run(model.Name, func(t *testing.T) {
			detections := 0
			for trial := 0; trial < 5; trial++ {
				sig := wazabeeFrame(t, model)
				if err := dsp.AddAWGN(sig, 18, rnd); err != nil {
					t.Fatal(err)
				}
				v, err := m.Inspect(sig)
				if err != nil {
					t.Fatal(err)
				}
				if !v.FrameSeen {
					t.Fatal("WazaBee frame not seen")
				}
				if v.Has(AlertModulationFingerprint) {
					detections++
				}
			}
			if detections < 4 {
				t.Errorf("fingerprint detected %d/5 WazaBee frames from %s", detections, model.Name)
			}
		})
	}
}

func TestInspectFlagsScenarioAInjection(t *testing.T) {
	// The smartphone path wraps the Zigbee frame in a whitened
	// AUX_ADV_IND; the IDS must spot the BLE framing around it.
	m := testMonitor(t)
	phone, err := attack.NewSmartphone(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	ppdu := testPPDU(t, []byte{0x41, 0x88, 0x05, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x07})

	// Find an event whose CSA#2 draw hits BLE channel 8 so the forged
	// data is dewhitened for the right channel.
	for event := uint16(0); event < 500; event++ {
		sig, bleChannel, err := phone.AdvertiseOnce(event, ppdu)
		if err != nil {
			t.Fatal(err)
		}
		if bleChannel != 8 {
			continue
		}
		padded, err := sig.Pad(150, 100)
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.Inspect(padded)
		if err != nil {
			t.Fatal(err)
		}
		if !v.FrameSeen {
			t.Fatal("embedded frame not decoded by the monitor")
		}
		if !v.Has(AlertBLEFraming) {
			t.Error("BLE framing around the injected frame not detected")
		}
		if !v.Has(AlertModulationFingerprint) {
			t.Error("GFSK fingerprint of the injected frame not detected")
		}
		return
	}
	t.Fatal("CSA#2 never selected channel 8")
}

func TestInspectUnexpectedTrafficPolicy(t *testing.T) {
	m := testMonitor(t)
	m.ChannelExpected = false
	v, err := m.Inspect(legitFrame(t))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Has(AlertUnexpectedTraffic) {
		t.Error("traffic on a policy-forbidden channel not flagged")
	}
}

func TestInspectNoiseOnly(t *testing.T) {
	m := testMonitor(t)
	rnd := rand.New(rand.NewSource(3))
	noise, err := dsp.NoiseFloor(8192, 0.1, rnd)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Inspect(noise)
	if err != nil {
		t.Fatal(err)
	}
	if v.FrameSeen || v.Suspicious() {
		t.Errorf("noise-only capture produced %+v", v)
	}
	if _, err := m.Inspect(nil); err == nil {
		t.Error("expected error for empty capture")
	}
}

func TestInspectScenarioBTrafficFingerprinted(t *testing.T) {
	// Scenario B frames come from a bare WazaBee transmitter (no BLE
	// packet framing), so only the fingerprint detector can see them.
	m := testMonitor(t)
	sig := wazabeeFrame(t, chip.NRF51822())
	v, err := m.Inspect(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !v.FrameSeen {
		t.Fatal("frame not seen")
	}
	if v.Has(AlertBLEFraming) {
		t.Error("bare WazaBee frame should not trigger the BLE-framing detector")
	}
	if !v.Has(AlertModulationFingerprint) {
		t.Errorf("bare WazaBee frame not fingerprinted (EVM %.3f)", v.SoftEVM)
	}
}

func TestVerdictHelpers(t *testing.T) {
	v := &Verdict{}
	if v.Suspicious() || v.Has(AlertBLEFraming) {
		t.Error("empty verdict should be clean")
	}
	v.Alerts = append(v.Alerts, Alert{Kind: AlertBLEFraming})
	if !v.Suspicious() || !v.Has(AlertBLEFraming) || v.Has(AlertUnexpectedTraffic) {
		t.Error("verdict helpers inconsistent")
	}
}

// TestIDSOnVictimNetwork watches the simulated victim network: routine
// sensor traffic stays clean while an attack step raises an alert.
func TestIDSOnVictimNetwork(t *testing.T) {
	sim, err := zigbee.NewSimulation(11, testSPS, 25)
	if err != nil {
		t.Fatal(err)
	}
	m := testMonitor(t)

	capture, err := sim.Capture(zigbee.DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Inspect(capture)
	if err != nil {
		t.Fatal(err)
	}
	if !v.FrameSeen {
		t.Fatal("sensor traffic not seen")
	}
	if v.Suspicious() {
		t.Errorf("legitimate sensor traffic flagged: %+v (EVM %.3f)", v.Alerts, v.SoftEVM)
	}

	// Now the attacker spoofs a reading through a diverted BLE chip.
	model := chip.NRF52832()
	tx, err := model.NewWazaBeeTransmitter(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := model.NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := attack.NewTracker(tx, rx, sim)
	if err != nil {
		t.Fatal(err)
	}
	info := &attack.NetworkInfo{Channel: zigbee.DefaultChannel, PAN: zigbee.DefaultPAN, Coordinator: zigbee.DefaultCoordinator}
	if err := tracker.SpoofData(info, zigbee.DefaultSensor, 4242); err != nil {
		t.Fatal(err)
	}
	// Re-create the attacker waveform as the IDS antenna would hear it.
	frame := ieee802154.NewDataFrame(1, info.PAN, info.Coordinator, zigbee.DefaultSensor, zigbee.SensorPayload(4242), true)
	psdu, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	atkSig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		t.Fatal(err)
	}
	padded, err := atkSig.Pad(150, 100)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Inspect(padded)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Has(AlertModulationFingerprint) {
		t.Errorf("attack traffic not fingerprinted (EVM %.3f)", v2.SoftEVM)
	}
}
