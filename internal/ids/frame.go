package ids

import (
	"fmt"

	"wazabee/internal/obs"
)

// DefaultFingerprintThreshold is the soft-EVM decision threshold both
// monitor tiers default to: above roughly 12 dB SNR a native O-QPSK
// transmitter stays well below 0.2 rad while a diverted GFSK chip stays
// above 0.33 rad, so 0.27 splits the calibrated distributions.
const DefaultFingerprintThreshold = 0.27

// FrameFeatures are the detector inputs of one frame at the frame
// fidelity tier, where no waveform exists to demodulate: the fingerprint
// statistic and framing evidence arrive pre-extracted (in simulation,
// drawn from the calibrated distributions the IQ tier measures).
type FrameFeatures struct {
	// SoftEVM is the modulation-fingerprint statistic: RMS deviation of
	// the per-chip phase steps from the nominal ±π/2, in radians.
	SoftEVM float64
	// BLEFraming reports that BLE advertising framing (preamble and
	// Access Address) preceded the 802.15.4 frame on the air — the
	// scenario A signature.
	BLEFraming bool
}

// FrameMonitor is the frame-tier counterpart of Monitor: it applies the
// same detector policy to pre-extracted frame features instead of IQ
// captures, so campaign-scale simulations can exercise the IDS decision
// logic without synthesising a waveform per frame. Thresholds and alert
// kinds are shared with the IQ tier — a threshold sweep over either
// tier explores the same operating curve.
type FrameMonitor struct {
	// FingerprintThreshold is the soft-EVM value above which a frame is
	// flagged as GFSK-originated (see Monitor.FingerprintThreshold).
	FingerprintThreshold float64

	// ChannelExpected reports whether legitimate 802.15.4 traffic is
	// expected on the monitored channel; when false, every frame raises
	// AlertUnexpectedTraffic. Defaults to true.
	ChannelExpected bool

	// Obs receives the monitor's metrics; nil falls back to the process
	// default registry.
	Obs *obs.Registry
}

// NewFrameMonitor builds a frame-tier monitor with the default policy.
func NewFrameMonitor() *FrameMonitor {
	return &FrameMonitor{
		FingerprintThreshold: DefaultFingerprintThreshold,
		ChannelExpected:      true,
	}
}

// Judge runs the detector policy over one frame's features. The verdict
// mirrors Inspect's: alerts appear in the same order (band policy,
// fingerprint, framing) with the same kinds, so downstream consumers
// need not know which tier produced them.
func (m *FrameMonitor) Judge(f FrameFeatures) *Verdict {
	reg := obs.Or(m.Obs)
	reg.Counter("wazabee_ids_frame_inspections_total").Inc()
	verdict := &Verdict{FrameSeen: true, SoftEVM: f.SoftEVM}
	if !m.ChannelExpected {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind:   AlertUnexpectedTraffic,
			Detail: "802.15.4 frame on a channel with no deployed network",
		})
	}
	if f.SoftEVM > m.FingerprintThreshold {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind: AlertModulationFingerprint,
			Detail: fmt.Sprintf("soft EVM %.2f rad above threshold %.2f",
				f.SoftEVM, m.FingerprintThreshold),
		})
	}
	if f.BLEFraming {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind:   AlertBLEFraming,
			Detail: "BLE advertising preamble and Access Address precede the 802.15.4 frame",
		})
	}
	for _, a := range verdict.Alerts {
		reg.Counter("wazabee_ids_frame_detections_total", "kind", a.Kind.String()).Inc()
	}
	return verdict
}
