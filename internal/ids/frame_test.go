package ids

import (
	"testing"

	"wazabee/internal/obs"
)

func TestFrameMonitorThresholdEdges(t *testing.T) {
	m := NewFrameMonitor()
	if m.FingerprintThreshold != DefaultFingerprintThreshold {
		t.Fatalf("default threshold = %v, want %v", m.FingerprintThreshold, DefaultFingerprintThreshold)
	}
	cases := []struct {
		name string
		evm  float64
		want bool
	}{
		{"zero", 0, false},
		{"native typical", 0.12, false},
		{"just below", DefaultFingerprintThreshold - 1e-9, false},
		{"exactly at threshold", DefaultFingerprintThreshold, false}, // strict >
		{"just above", DefaultFingerprintThreshold + 1e-9, true},
		{"diverted typical", 0.38, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := m.Judge(FrameFeatures{SoftEVM: tc.evm})
			if got := v.Has(AlertModulationFingerprint); got != tc.want {
				t.Errorf("Judge(evm=%v) fingerprint alert = %v, want %v", tc.evm, got, tc.want)
			}
			if !v.FrameSeen || v.SoftEVM != tc.evm {
				t.Errorf("verdict = %+v, want FrameSeen with SoftEVM %v", v, tc.evm)
			}
		})
	}
}

func TestFrameMonitorCustomThreshold(t *testing.T) {
	m := &FrameMonitor{FingerprintThreshold: 0.5, ChannelExpected: true}
	if m.Judge(FrameFeatures{SoftEVM: 0.4}).Suspicious() {
		t.Error("0.4 flagged under a 0.5 threshold")
	}
	if !m.Judge(FrameFeatures{SoftEVM: 0.6}).Has(AlertModulationFingerprint) {
		t.Error("0.6 not flagged under a 0.5 threshold")
	}
}

func TestFrameMonitorFramingAlert(t *testing.T) {
	m := NewFrameMonitor()
	v := m.Judge(FrameFeatures{SoftEVM: 0.1, BLEFraming: true})
	if !v.Has(AlertBLEFraming) {
		t.Error("BLE framing not flagged")
	}
	if v.Has(AlertModulationFingerprint) {
		t.Error("clean EVM flagged as fingerprint")
	}
}

func TestFrameMonitorAlertOrderMatchesInspect(t *testing.T) {
	// The IQ-tier Inspect appends unexpected-traffic, then fingerprint,
	// then framing; the frame tier must agree so first-alert attribution
	// is fidelity-independent.
	m := &FrameMonitor{FingerprintThreshold: 0.27, ChannelExpected: false}
	v := m.Judge(FrameFeatures{SoftEVM: 0.4, BLEFraming: true})
	want := []AlertKind{AlertUnexpectedTraffic, AlertModulationFingerprint, AlertBLEFraming}
	if len(v.Alerts) != len(want) {
		t.Fatalf("alerts = %v, want %d kinds", v.Alerts, len(want))
	}
	for i, k := range want {
		if v.Alerts[i].Kind != k {
			t.Errorf("alert[%d] = %v, want %v", i, v.Alerts[i].Kind, k)
		}
	}
}

func TestFrameMonitorUnexpectedTraffic(t *testing.T) {
	m := &FrameMonitor{FingerprintThreshold: 0.27, ChannelExpected: false}
	v := m.Judge(FrameFeatures{SoftEVM: 0.05})
	if !v.Has(AlertUnexpectedTraffic) || len(v.Alerts) != 1 {
		t.Errorf("verdict alerts = %v, want only unexpected-traffic", v.Alerts)
	}
}

func TestFrameMonitorMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := &FrameMonitor{FingerprintThreshold: 0.27, ChannelExpected: true, Obs: reg}
	m.Judge(FrameFeatures{SoftEVM: 0.1})
	m.Judge(FrameFeatures{SoftEVM: 0.4})
	m.Judge(FrameFeatures{SoftEVM: 0.4, BLEFraming: true})
	if got := reg.Counter("wazabee_ids_frame_inspections_total").Value(); got != 3 {
		t.Errorf("inspections = %d, want 3", got)
	}
	if got := reg.Counter("wazabee_ids_frame_detections_total", "kind", AlertModulationFingerprint.String()).Value(); got != 2 {
		t.Errorf("fingerprint detections = %d, want 2", got)
	}
	if got := reg.Counter("wazabee_ids_frame_detections_total", "kind", AlertBLEFraming.String()).Value(); got != 1 {
		t.Errorf("framing detections = %d, want 1", got)
	}
}

func TestMonitorDefaultThresholdConstant(t *testing.T) {
	m, err := NewMonitor(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.FingerprintThreshold != DefaultFingerprintThreshold {
		t.Errorf("IQ monitor default threshold = %v, want the shared constant %v",
			m.FingerprintThreshold, DefaultFingerprintThreshold)
	}
}
