// Package ids implements the counter-measures of section VII: a
// radio-monitoring intrusion detection system that inspects 2.4 GHz
// captures for cross-technology attacks. It combines three detectors:
//
//   - BLE-framing detection: an 802.15.4 frame embedded inside a BLE
//     advertising packet (the scenario A injection path) leaves the BLE
//     preamble and Access Address on the air right before the Zigbee
//     preamble;
//   - modulation fingerprinting: a GFSK transmitter's Gaussian
//     inter-symbol interference leaves a measurably higher despreading
//     distance floor than a native O-QPSK radio;
//   - band policy: 802.15.4 traffic on a network where none is deployed
//     (or on an unexpected channel) is suspicious by itself, in the
//     spirit of the multi-protocol monitoring of [31].
package ids

import (
	"fmt"

	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
)

// AlertKind classifies what a detector found.
type AlertKind int

const (
	// AlertBLEFraming fires when a decoded 802.15.4 frame is preceded
	// on the air by BLE advertising framing — the scenario A signature.
	AlertBLEFraming AlertKind = iota + 1
	// AlertModulationFingerprint fires when a frame's despreading
	// distance profile looks like a diverted GFSK transmitter rather
	// than a native O-QPSK radio.
	AlertModulationFingerprint
	// AlertUnexpectedTraffic fires when any 802.15.4 frame appears on a
	// channel the deployment policy marks as unused.
	AlertUnexpectedTraffic
)

// String implements fmt.Stringer.
func (k AlertKind) String() string {
	switch k {
	case AlertBLEFraming:
		return "ble-framing"
	case AlertModulationFingerprint:
		return "modulation-fingerprint"
	case AlertUnexpectedTraffic:
		return "unexpected-traffic"
	default:
		return fmt.Sprintf("alert(%d)", int(k))
	}
}

// Alert is one detector finding.
type Alert struct {
	Kind   AlertKind
	Detail string
}

// Verdict is the result of inspecting one capture.
type Verdict struct {
	// FrameSeen reports whether an 802.15.4 frame decoded at all.
	FrameSeen bool
	// Frame is the decoded frame when FrameSeen (FCS not verified).
	Frame *ieee802154.Demodulated
	// SoftEVM is the fingerprint statistic of the frame: RMS deviation
	// of the per-chip phase steps from the nominal ±π/2.
	SoftEVM float64
	// Alerts lists everything the detectors flagged.
	Alerts []Alert
}

// Suspicious reports whether any detector fired.
func (v *Verdict) Suspicious() bool {
	return len(v.Alerts) > 0
}

// Has reports whether an alert of the given kind is present.
func (v *Verdict) Has(kind AlertKind) bool {
	for _, a := range v.Alerts {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

// Monitor is a passive multi-protocol watcher for one channel.
type Monitor struct {
	zigbeePHY *ieee802154.PHY
	blePHY    *ble.PHY

	// FingerprintThreshold is the soft-EVM value above which a frame is
	// flagged as GFSK-originated. On links with SNR above roughly 12 dB
	// a native O-QPSK transmitter stays well below 0.2 rad while the
	// Gaussian ISI of a diverted BLE chip keeps the statistic above
	// 0.33 rad; at lower SNR the noise floor dominates and the
	// fingerprint loses discrimination (an honest limitation of this
	// class of counter-measure).
	FingerprintThreshold float64

	// ChannelExpected reports whether legitimate 802.15.4 traffic is
	// expected on the monitored channel; when false, every frame raises
	// AlertUnexpectedTraffic. Defaults to true.
	ChannelExpected bool

	// Obs receives the monitor's metrics (inspections, frames seen,
	// detections by alert kind); nil falls back to the process default
	// registry.
	Obs *obs.Registry
}

// NewMonitor builds a monitor at the given oversampling factor.
func NewMonitor(samplesPerChip int) (*Monitor, error) {
	zphy, err := ieee802154.NewPHY(samplesPerChip)
	if err != nil {
		return nil, err
	}
	// The watcher wants to see even marginal frames: disable the
	// quality gate.
	zphy.MaxChipDistance = 0
	zphy.MaxSyncErrors = 8
	bphy, err := ble.NewPHY(ble.LE2M, samplesPerChip)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		zigbeePHY:            zphy,
		blePHY:               bphy,
		FingerprintThreshold: DefaultFingerprintThreshold,
		ChannelExpected:      true,
	}, nil
}

// bleAdvPattern is the on-air signature of a BLE advertising packet at
// LE 2M: two preamble bytes followed by the advertising Access Address.
func bleAdvPattern() bitstream.Bits {
	pre := bitstream.BytesToBits([]byte{0xaa, 0xaa}) // AA LSB is 0
	return append(pre, bitstream.Uint32ToBits(ble.AdvAccessAddress)...)
}

// Inspect runs all detectors over one capture.
func (m *Monitor) Inspect(capture dsp.IQ) (*Verdict, error) {
	if len(capture) == 0 {
		return nil, fmt.Errorf("ids: empty capture")
	}
	reg := obs.Or(m.Obs)
	reg.Counter("wazabee_ids_inspections_total").Inc()
	// The inner O-QPSK decoder reports to the same registry as the
	// monitor that owns it.
	m.zigbeePHY.Obs = m.Obs
	verdict := &Verdict{}

	dem, err := m.zigbeePHY.Demodulate(capture)
	if err != nil {
		// No 802.15.4 frame; nothing further to fingerprint.
		return verdict, nil
	}
	verdict.FrameSeen = true
	verdict.Frame = dem
	verdict.SoftEVM = dem.SoftEVM

	if !m.ChannelExpected {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind:   AlertUnexpectedTraffic,
			Detail: "802.15.4 frame on a channel with no deployed network",
		})
	}

	if verdict.SoftEVM > m.FingerprintThreshold {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind: AlertModulationFingerprint,
			Detail: fmt.Sprintf("soft EVM %.2f rad above threshold %.2f",
				verdict.SoftEVM, m.FingerprintThreshold),
		})
	}

	// Scenario A leaves BLE advertising framing on the air around the
	// embedded frame: search the raw 2 Mbit/s bit stream for it.
	if cap2, err := m.blePHY.DemodulateFrame(capture, bleAdvPattern(), 3); err == nil && cap2 != nil {
		verdict.Alerts = append(verdict.Alerts, Alert{
			Kind:   AlertBLEFraming,
			Detail: "BLE advertising preamble and Access Address precede the 802.15.4 frame",
		})
	}
	if verdict.FrameSeen {
		reg.Counter("wazabee_ids_frames_seen_total").Inc()
	}
	for _, a := range verdict.Alerts {
		reg.Counter("wazabee_ids_detections_total", "kind", a.Kind.String()).Inc()
	}
	return verdict, nil
}
