package capture

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRecordBinaryRoundTrip(t *testing.T) {
	rec := Record{
		At:      time.Unix(1700000000, 123456789),
		Channel: 14,
		RSSIdBm: -61.25,
		SNRdB:   22,
		LQI:     248,
		Decoder: "wazabee",
		PSDU:    []byte{0x61, 0x88, 0x01, 0x34, 0x12},
	}
	b, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !got.At.Equal(rec.At) {
		t.Errorf("At %v, want %v", got.At, rec.At)
	}
	if got.Channel != rec.Channel || got.LQI != rec.LQI || got.Decoder != rec.Decoder {
		t.Errorf("metadata %d/%d/%q, want %d/%d/%q",
			got.Channel, got.LQI, got.Decoder, rec.Channel, rec.LQI, rec.Decoder)
	}
	if got.RSSIdBm != rec.RSSIdBm || got.SNRdB != rec.SNRdB {
		t.Errorf("RSSI/SNR %g/%g, want %g/%g", got.RSSIdBm, got.SNRdB, rec.RSSIdBm, rec.SNRdB)
	}
	if !bytes.Equal(got.PSDU, rec.PSDU) {
		t.Errorf("PSDU %x, want %x", got.PSDU, rec.PSDU)
	}
}

func TestRecordStream(t *testing.T) {
	var buf bytes.Buffer
	want := []Record{
		{At: time.Unix(1, 0), Channel: 14, Decoder: "wazabee", PSDU: []byte{1}},
		{At: time.Unix(2, 0), Channel: 15, Decoder: "oqpsk", PSDU: bytes.Repeat([]byte{2}, 127)},
		{At: time.Unix(3, 0), Channel: 16, Decoder: "raw"},
	}
	for _, rec := range want {
		if err := WriteRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadRecord(&buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Channel != w.Channel || got.Decoder != w.Decoder || !bytes.Equal(got.PSDU, w.PSDU) {
			t.Errorf("record %d mismatch: %+v", i, got)
		}
	}
	if _, err := ReadRecord(&buf); err != io.EOF {
		t.Errorf("drained stream returned %v, want io.EOF", err)
	}
}

func TestReadRecordRejectsCorruptStream(t *testing.T) {
	// Oversized length prefix: rejected before allocating.
	if _, err := ReadRecord(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff})); err == nil {
		t.Error("accepted a 4 GiB record length")
	}
	// Truncated body.
	if _, err := ReadRecord(bytes.NewReader([]byte{0, 0, 0, 40, 1, 2, 3})); err == nil {
		t.Error("accepted a truncated body")
	}
	// Bad version.
	var buf bytes.Buffer
	if err := WriteRecord(&buf, Record{At: time.Unix(0, 0), Channel: 14, PSDU: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99 // first body byte is the version
	if _, err := ReadRecord(bytes.NewReader(raw)); err == nil {
		t.Error("accepted an unknown record version")
	}
}

func TestMarshalRejectsInvalidRecords(t *testing.T) {
	if _, err := (Record{Channel: -1}).MarshalBinary(); err == nil {
		t.Error("marshalled a negative channel")
	}
	if _, err := (Record{PSDU: make([]byte, 300)}).MarshalBinary(); err == nil {
		t.Error("marshalled an oversized PSDU")
	}
}

func TestRecordV2RoundTripLinkFields(t *testing.T) {
	rec := Record{
		At:            time.Unix(1700000000, 0),
		Channel:       17,
		RSSIdBm:       -44.5,
		SNRdB:         18.25,
		LQI:           201,
		Seq:           0xdeadbeef,
		CFOHz:         -37_500,
		SyncCorr:      0.9375,
		ChipErrors:    42,
		ChipsCompared: 1364,
		Decoder:       "wazabee",
		PSDU:          []byte{0x61, 0x88, 0x01},
	}
	b, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Record
	if err := got.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if got.Seq != rec.Seq {
		t.Errorf("Seq %#x, want %#x", got.Seq, rec.Seq)
	}
	if got.CFOHz != rec.CFOHz || got.SyncCorr != rec.SyncCorr {
		t.Errorf("CFO/corr %g/%g, want %g/%g", got.CFOHz, got.SyncCorr, rec.CFOHz, rec.SyncCorr)
	}
	if got.ChipErrors != rec.ChipErrors || got.ChipsCompared != rec.ChipsCompared {
		t.Errorf("chip evidence %d/%d, want %d/%d",
			got.ChipErrors, got.ChipsCompared, rec.ChipErrors, rec.ChipsCompared)
	}
}

// TestRecordV1Decode hand-encodes the 28-byte version-1 layout and checks
// the reader still accepts it, with the version-2 link fields zero — old
// capture streams stay replayable.
func TestRecordV1Decode(t *testing.T) {
	b := []byte{1, 0} // version 1, flags
	b = binary.BigEndian.AppendUint64(b, uint64(time.Unix(5, 0).UnixNano()))
	b = append(b, 14, 200) // channel, lqi
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(-61.0))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(12.5))
	b = append(b, 3)
	b = append(b, "raw"...)
	b = append(b, 2, 0xaa, 0xbb)

	var rec Record
	if err := rec.UnmarshalBinary(b); err != nil {
		t.Fatalf("version-1 record rejected: %v", err)
	}
	if rec.Channel != 14 || rec.LQI != 200 || rec.Decoder != "raw" {
		t.Errorf("metadata %d/%d/%q", rec.Channel, rec.LQI, rec.Decoder)
	}
	if rec.RSSIdBm != -61.0 || rec.SNRdB != 12.5 {
		t.Errorf("RSSI/SNR %g/%g", rec.RSSIdBm, rec.SNRdB)
	}
	if !bytes.Equal(rec.PSDU, []byte{0xaa, 0xbb}) {
		t.Errorf("PSDU %x", rec.PSDU)
	}
	if rec.Seq != 0 || rec.CFOHz != 0 || rec.SyncCorr != 0 ||
		rec.ChipErrors != 0 || rec.ChipsCompared != 0 {
		t.Errorf("version-1 record carries non-zero link fields: %+v", rec)
	}
}

func TestRecordRejectsFutureVersion(t *testing.T) {
	rec := Record{At: time.Unix(0, 0), Channel: 14, Decoder: "wazabee", PSDU: []byte{1}}
	b, err := rec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b[0] = 3 // a version this reader does not know
	var got Record
	err = got.UnmarshalBinary(b)
	if err == nil {
		t.Fatal("accepted a version-3 record")
	}
	if !strings.Contains(err.Error(), "version 3") || !strings.Contains(err.Error(), "max 2") {
		t.Errorf("rejection error %q does not name the versions", err)
	}
}
