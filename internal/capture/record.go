// Package capture is the persistence and distribution layer of the
// reproduction: what turns the WazaBee reception primitive from a
// print-and-drop demo into a serving-shaped pipeline. It provides
//
//   - Record, the timestamped frame record every producer publishes
//     (channel, RSSI/SNR, decoder kind, PSDU) with a compact
//     length-prefixed binary encoding for TCP streaming;
//   - a classic PCAP writer/reader (LINKTYPE_IEEE802_15_4_WITHFCS, 195)
//     and a ZEP v2 (Zigbee Encapsulation Protocol, UDP/17754)
//     encoder/decoder, so captures open directly in Wireshark;
//   - Hub, a concurrency-safe fan-out from one producer to N bounded
//     subscriber queues with an explicit drop-oldest backpressure
//     policy, accounted in the internal/obs registry;
//   - deterministic replay of recorded captures back through the
//     simulated radio medium into any receiver, so a saved capture
//     becomes a reproducible regression input.
//
// Everything is standard library only, matching the module's empty
// dependency set.
package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"wazabee/internal/dsp"
)

// Record is one captured 802.15.4 frame with its radio metadata — the
// unit every capture sink (pcap file, ZEP datagram, TCP subscriber,
// replay engine) consumes.
type Record struct {
	// At is the capture timestamp.
	At time.Time
	// Channel is the 802.15.4 channel (11–26) the frame was heard on;
	// zero means unknown (e.g. a record recovered from a bare pcap,
	// whose link type carries no radio header).
	Channel int
	// RSSIdBm is the received signal strength indication.
	RSSIdBm float64
	// SNRdB is the link signal-to-noise ratio, when the producer knows
	// it (a simulation does; zero otherwise).
	SNRdB float64
	// LQI is the 802.15.4 link quality indication (0–255).
	LQI uint8
	// Seq numbers the record within its producer's stream, so downstream
	// consumers (ZEP datagrams, subscribers) stay sequence-linked to the
	// capture loop instead of renumbering.
	Seq uint32
	// CFOHz is the carrier frequency offset the demodulator estimated
	// and corrected, in hertz.
	CFOHz float64
	// SyncCorr is the normalized sync-correlation peak (nominal 1.0 for
	// a noiseless, perfectly timed match).
	SyncCorr float64
	// ChipErrors and ChipsCompared carry the despreader's Hamming
	// evidence: chip mismatches observed out of chips compared.
	ChipErrors    uint32
	ChipsCompared uint32
	// Decoder identifies the receive pipeline that produced the record:
	// "wazabee" for the diverted-BLE primitive, "oqpsk" for the
	// legitimate demodulator, "raw" for an undecoded capture.
	Decoder string
	// PSDU is the MAC frame including the trailing two-byte FCS. Empty
	// for a "raw" record (sync loss — the waveform was heard but never
	// decoded).
	PSDU []byte

	// IQ optionally carries the baseband waveform the record was
	// decoded from, for in-process consumers such as the IDS that work
	// below the frame level. It is never serialised by any encoder.
	IQ dsp.IQ

	// Origin is the monotonic emission stamp of the capture this record
	// came from (zigbee.Capture.Origin), anchoring the per-stage
	// wazabee_latency_* histograms the hub and its subscriptions
	// observe. In-memory only — never serialised by any encoder — and
	// zero for records that were not produced live (file reads, replay),
	// which skips the origin-anchored latency stages.
	Origin time.Time
}

// Clone returns a record with its own copy of the PSDU (the IQ buffer,
// in-memory only, is shared).
func (r Record) Clone() Record {
	cp := r
	cp.PSDU = append([]byte(nil), r.PSDU...)
	return cp
}

// Binary record layout (all integers big-endian). Version 2 extends the
// version-1 header with the link diagnostics; the reader still accepts
// version-1 streams (the added fields decode as zero):
//
//	version     uint8  = 2
//	flags       uint8  = 0 (reserved)
//	at          int64  Unix nanoseconds
//	channel     uint8
//	lqi         uint8
//	rssi_dbm    uint64 IEEE-754 bits
//	snr_db      uint64 IEEE-754 bits
//	--- end of the version-1 fixed header (28 bytes) ---
//	seq         uint32 producer stream sequence
//	cfo_hz      uint64 IEEE-754 bits
//	sync_corr   uint64 IEEE-754 bits
//	chip_errors uint32
//	chips       uint32
//	--- end of the version-2 fixed header (56 bytes) ---
//	decoder     uint8 length + bytes
//	psdu        uint8 length + bytes
const (
	recordVersion  = 2
	recordV1Header = 28
	recordV2Header = 56
	recordMaxKnown = recordVersion
)

// maxRecordWire bounds the size of one encoded record: the fixed header
// plus two maximal length-prefixed fields.
const maxRecordWire = recordV2Header + 1 + 255 + 1 + 255

// MarshalBinary encodes the record in the version-2 wire layout.
func (r Record) MarshalBinary() ([]byte, error) {
	if r.Channel < 0 || r.Channel > 255 {
		return nil, fmt.Errorf("capture: channel %d outside uint8 range", r.Channel)
	}
	if len(r.Decoder) > 255 {
		return nil, fmt.Errorf("capture: decoder tag %d bytes long", len(r.Decoder))
	}
	if len(r.PSDU) > 255 {
		return nil, fmt.Errorf("capture: PSDU %d bytes exceeds one octet length", len(r.PSDU))
	}
	b := make([]byte, 0, recordV2Header+2+len(r.Decoder)+len(r.PSDU))
	b = append(b, recordVersion, 0)
	b = binary.BigEndian.AppendUint64(b, uint64(r.At.UnixNano()))
	b = append(b, uint8(r.Channel), r.LQI)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.RSSIdBm))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.SNRdB))
	b = binary.BigEndian.AppendUint32(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.CFOHz))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(r.SyncCorr))
	b = binary.BigEndian.AppendUint32(b, r.ChipErrors)
	b = binary.BigEndian.AppendUint32(b, r.ChipsCompared)
	b = append(b, uint8(len(r.Decoder)))
	b = append(b, r.Decoder...)
	b = append(b, uint8(len(r.PSDU)))
	b = append(b, r.PSDU...)
	return b, nil
}

// UnmarshalBinary decodes a version-1 or version-2 record. Unknown
// future versions are rejected with a descriptive error rather than
// misparsed; corrupt input yields an error, never a panic.
func (r *Record) UnmarshalBinary(b []byte) error {
	if len(b) < 1 {
		return fmt.Errorf("capture: empty record")
	}
	version := b[0]
	if version == 0 || version > recordMaxKnown {
		return fmt.Errorf("capture: record version %d is newer than this reader supports (max %d); upgrade the reader or re-record",
			version, recordMaxKnown)
	}
	header := recordV1Header
	if version == 2 {
		header = recordV2Header
	}
	if len(b) < header {
		return fmt.Errorf("capture: version-%d record truncated at %d bytes (want %d-byte header)",
			version, len(b), header)
	}
	at := int64(binary.BigEndian.Uint64(b[2:10]))
	channel := int(b[10])
	lqi := b[11]
	rssi := math.Float64frombits(binary.BigEndian.Uint64(b[12:20]))
	snr := math.Float64frombits(binary.BigEndian.Uint64(b[20:28]))
	var seq, chipErrs, chips uint32
	var cfo, corr float64
	if version == 2 {
		seq = binary.BigEndian.Uint32(b[28:32])
		cfo = math.Float64frombits(binary.BigEndian.Uint64(b[32:40]))
		corr = math.Float64frombits(binary.BigEndian.Uint64(b[40:48]))
		chipErrs = binary.BigEndian.Uint32(b[48:52])
		chips = binary.BigEndian.Uint32(b[52:56])
	}
	rest := b[header:]
	if len(rest) < 1 {
		return fmt.Errorf("capture: record missing decoder tag")
	}
	dlen := int(rest[0])
	rest = rest[1:]
	if len(rest) < dlen {
		return fmt.Errorf("capture: decoder tag truncated (%d < %d)", len(rest), dlen)
	}
	decoder := string(rest[:dlen])
	rest = rest[dlen:]
	if len(rest) < 1 {
		return fmt.Errorf("capture: record missing PSDU length")
	}
	plen := int(rest[0])
	rest = rest[1:]
	if len(rest) < plen {
		return fmt.Errorf("capture: PSDU truncated (%d < %d)", len(rest), plen)
	}
	*r = Record{
		At:            time.Unix(0, at),
		Channel:       channel,
		RSSIdBm:       rssi,
		SNRdB:         snr,
		LQI:           lqi,
		Seq:           seq,
		CFOHz:         cfo,
		SyncCorr:      corr,
		ChipErrors:    chipErrs,
		ChipsCompared: chips,
		Decoder:       decoder,
		PSDU:          append([]byte(nil), rest[:plen]...),
	}
	return nil
}

// WriteRecord frames one record onto a stream as a big-endian uint32
// length prefix followed by the record's binary encoding — the TCP
// subscriber protocol of wazabeed.
func WriteRecord(w io.Writer, rec Record) error {
	body, err := rec.MarshalBinary()
	if err != nil {
		return err
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadRecord reads one length-prefixed record from a stream. It returns
// io.EOF at a clean end of stream (no bytes read).
func ReadRecord(r io.Reader) (Record, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("capture: truncated record length prefix")
		}
		return Record{}, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxRecordWire {
		return Record{}, fmt.Errorf("capture: record length %d exceeds maximum %d", n, maxRecordWire)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, fmt.Errorf("capture: truncated record body: %w", err)
	}
	var rec Record
	if err := rec.UnmarshalBinary(body); err != nil {
		return Record{}, err
	}
	return rec, nil
}
