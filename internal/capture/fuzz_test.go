package capture

import (
	"bytes"
	"testing"
	"time"
)

// FuzzPCAPRoundTrip drives the reader with arbitrary bytes (it must
// error, never panic, never over-allocate) and checks that writing any
// frame and reading it back is byte-identical on re-encode.
func FuzzPCAPRoundTrip(f *testing.F) {
	var seedBuf bytes.Buffer
	if pw, err := NewPCAPWriter(&seedBuf); err == nil {
		pw.WritePacket(time.Unix(1, 2000), []byte{0xde, 0xad})
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("EXnot a pcap at all, just prose"))
	f.Add(bytes.Repeat([]byte{0xa1}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Arbitrary input never panics the reader.
		if pr, err := NewPCAPReader(bytes.NewReader(data)); err == nil {
			for i := 0; i < 64; i++ {
				if _, _, err := pr.Next(); err != nil {
					break
				}
			}
		}

		// 2. Any frame-sized payload survives a write→read→write round
		// trip byte-identically.
		psdu := data
		if len(psdu) > 127 {
			psdu = psdu[:127]
		}
		if len(psdu) == 0 {
			return
		}
		rec := Record{At: time.Unix(1700000000, 123456000), Channel: 14, PSDU: psdu}

		var first bytes.Buffer
		pw, err := NewPCAPWriter(&first)
		if err != nil {
			t.Fatal(err)
		}
		if err := pw.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}

		pr, err := NewPCAPReader(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("rejecting our own header: %v", err)
		}
		at, got, err := pr.Next()
		if err != nil {
			t.Fatalf("rejecting our own packet: %v", err)
		}
		if !bytes.Equal(got, psdu) {
			t.Fatalf("payload changed: %x -> %x", psdu, got)
		}

		var second bytes.Buffer
		pw2, err := NewPCAPWriter(&second)
		if err != nil {
			t.Fatal(err)
		}
		if err := pw2.WritePacket(at, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("pcap re-encode not byte-identical:\n%x\n%x", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzZEPDecode feeds the ZEP decoder arbitrary datagrams: it must
// error on corrupt input without panicking, and anything it accepts
// must re-encode into a datagram that decodes to the same frame.
func FuzzZEPDecode(f *testing.F) {
	if good, err := EncodeZEP(Record{At: time.Unix(5, 0), Channel: 14, LQI: 9, PSDU: []byte{1, 2, 3}}, 0x5742, 1); err == nil {
		f.Add(good)
	}
	f.Add([]byte{})
	f.Add([]byte{'E', 'X', 2, 2, 0, 0, 0, 1})
	f.Add([]byte("EX definitely not a capture"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, deviceID, seq, err := DecodeZEP(data)
		if err != nil {
			return
		}
		enc, err := EncodeZEP(rec, deviceID, seq)
		if err != nil {
			t.Fatalf("decoded record does not re-encode: %v", err)
		}
		rec2, deviceID2, seq2, err := DecodeZEP(enc)
		if err != nil {
			t.Fatalf("re-encoded datagram does not decode: %v", err)
		}
		if deviceID2 != deviceID || seq2 != seq {
			t.Fatalf("device/seq changed: %d/%d -> %d/%d", deviceID, seq, deviceID2, seq2)
		}
		if rec2.Channel != rec.Channel || rec2.LQI != rec.LQI || !bytes.Equal(rec2.PSDU, rec.PSDU) {
			t.Fatalf("frame changed across re-encode: %+v vs %+v", rec, rec2)
		}
		// The NTP fraction floors at 2^-32 s granularity per pass.
		if d := rec2.At.Sub(rec.At); d < -2*time.Nanosecond || d > 2*time.Nanosecond {
			t.Fatalf("timestamp drifted %v", d)
		}
	})
}
