package capture

import (
	"bytes"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPCAPGoldenBytes pins the exact on-disk byte stream: the classic
// little-endian microsecond pcap header with link type 195 and one
// packet. Any change here breaks Wireshark compatibility.
func TestPCAPGoldenBytes(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPCAPWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		At:      time.Unix(0x60000000, 123456000), // 123456 µs
		Channel: 14,
		PSDU:    []byte{0x01, 0x02, 0x03, 0xaa, 0xbb},
	}
	if err := pw.WriteRecord(rec); err != nil {
		t.Fatal(err)
	}

	golden := "" +
		// global header: magic, v2.4, thiszone, sigfigs, snaplen 65535, linktype 195
		"d4c3b2a1" + "0200" + "0400" + "00000000" + "00000000" + "ffff0000" + "c3000000" +
		// packet header: ts_sec 0x60000000, ts_usec 123456, incl 5, orig 5
		"00000060" + "40e20100" + "05000000" + "05000000" +
		// the PSDU, verbatim
		"010203aabb"
	if got := hex.EncodeToString(buf.Bytes()); got != golden {
		t.Fatalf("pcap byte stream changed:\n got  %s\n want %s", got, golden)
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	records := []Record{
		{At: time.Unix(100, 1000), Channel: 14, PSDU: []byte{0xde, 0xad}},
		{At: time.Unix(101, 2000), Channel: 14, PSDU: bytes.Repeat([]byte{0x55}, 127)},
		{At: time.Unix(102, 0), Channel: 14, Decoder: "raw"}, // no PSDU: skipped
	}
	path := filepath.Join(t.TempDir(), "round.pcap")
	if err := WritePCAP(path, records); err != nil {
		t.Fatal(err)
	}
	got, err := OpenPCAP(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d packets, want 2 (the raw record has no frame)", len(got))
	}
	for i, rec := range got {
		if !bytes.Equal(rec.PSDU, records[i].PSDU) {
			t.Errorf("packet %d PSDU %x, want %x", i, rec.PSDU, records[i].PSDU)
		}
		// Microsecond resolution: the timestamp survives to the µs.
		if !rec.At.Equal(records[i].At.Truncate(time.Microsecond)) {
			t.Errorf("packet %d timestamp %v, want %v", i, rec.At, records[i].At)
		}
		if rec.Decoder != "pcap" {
			t.Errorf("packet %d decoder %q, want pcap", i, rec.Decoder)
		}
	}

	// A second write of the same records is byte-identical.
	var a, b bytes.Buffer
	for _, w := range []*bytes.Buffer{&a, &b} {
		pw, err := NewPCAPWriter(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records {
			if err := pw.WriteRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("pcap encoding is not deterministic")
	}
}

func TestPCAPReaderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("EX"),
		"wrong magic": bytes.Repeat([]byte{0x42}, 24),
	}
	for name, data := range cases {
		if _, err := NewPCAPReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: reader accepted invalid header", name)
		}
	}

	// Valid header, absurd packet length: rejected before allocation.
	var buf bytes.Buffer
	if _, err := NewPCAPWriter(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	pr, err := NewPCAPReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.Next(); err == nil {
		t.Error("reader accepted a 2 GiB packet header")
	}
}

func TestRotatingPCAP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rot.pcap")
	// Budget fits the header plus one 10-byte packet (24 + 16 + 10 = 50),
	// so every second packet forces a rotation.
	rot, err := OpenRotatingPCAP(path, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	psdu := bytes.Repeat([]byte{0xab}, 10)
	for i := 0; i < 3; i++ {
		if err := rot.WriteRecord(Record{At: time.Unix(int64(i), 0), Channel: 14, PSDU: psdu}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rot.Close(); err != nil {
		t.Fatal(err)
	}
	if rot.Packets() != 3 {
		t.Errorf("wrote %d packets, want 3", rot.Packets())
	}
	for _, name := range []string{"rot.pcap", "rot.pcap.1", "rot.pcap.2"} {
		recs, err := OpenPCAP(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) != 1 {
			t.Errorf("%s holds %d packets, want 1", name, len(recs))
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "rot.pcap.3")); err == nil {
		t.Error("unexpected third rotation")
	}
}

func TestOpenPCAPRejectsWrongLinkType(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ether.pcap")
	var hdr [24]byte
	copy(hdr[:4], []byte{0xd4, 0xc3, 0xb2, 0xa1})
	hdr[4] = 2
	hdr[20] = 1 // LINKTYPE_ETHERNET
	if err := os.WriteFile(path, hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPCAP(path); err == nil {
		t.Error("OpenPCAP accepted an Ethernet capture")
	}
}

func TestPCAPReaderTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPCAPWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	pr, err := NewPCAPReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated body returned %v, want a descriptive error", err)
	}
}
