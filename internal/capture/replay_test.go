package capture

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"wazabee/internal/chip"
	"wazabee/internal/dsp"
	"wazabee/internal/obs"
	"wazabee/internal/zigbee"
)

const testSPS = 8

// TestReplayLivePCAPRoundTrip is the subsystem's end-to-end acceptance
// path: sniff a frame from the live victim network with the WazaBee
// receiver, persist it to a pcap file, read the file back, replay it
// through the seeded radio medium into the same kind of receiver, and
// require the identical PSDU out of both paths.
func TestReplayLivePCAPRoundTrip(t *testing.T) {
	sim, err := zigbee.NewSimulation(7, testSPS, 25)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := chip.CC1352R1().NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx.Obs = obs.NewRegistry() // keep the process default registry clean

	// Live path: one sensor reporting period, decoded by the diverted
	// BLE receiver.
	sig, err := sim.Step(zigbee.DefaultChannel)
	if err != nil {
		t.Fatal(err)
	}
	dem, err := rx.Receive(sig)
	if err != nil {
		t.Fatal(err)
	}
	livePSDU := append([]byte(nil), dem.PPDU.PSDU...)

	// Persist and recover.
	path := filepath.Join(t.TempDir(), "live.pcap")
	rec := NewLiveRecord(time.Unix(1700000000, 0), zigbee.DefaultChannel, sig, dem, 25)
	if err := WritePCAP(path, []Record{rec}); err != nil {
		t.Fatal(err)
	}
	recovered, err := OpenPCAP(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recovered))
	}

	// Replay into a fresh receiver of the same kind.
	rx2, err := chip.CC1352R1().NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx2.Obs = obs.NewRegistry()
	cfg := ReplayConfig{SamplesPerChip: testSPS, Seed: 99, SNRdB: 25, Obs: obs.NewRegistry()}
	dems, err := ReplayThroughReceiver(recovered, cfg, rx2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dems) != 1 || dems[0] == nil {
		t.Fatalf("replay did not decode the recorded frame: %v", dems)
	}
	if !bytes.Equal(dems[0].PPDU.PSDU, livePSDU) {
		t.Fatalf("replayed PSDU %x differs from live PSDU %x", dems[0].PPDU.PSDU, livePSDU)
	}
}

// TestReplayDeterminism: same records + same seed → sample-exact
// waveforms; a different seed perturbs them.
func TestReplayDeterminism(t *testing.T) {
	psdu := []byte{0x61, 0x88, 0x07, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0xaa, 0xbb, 0x00, 0x00}
	records := []Record{
		{At: time.Unix(10, 0), Channel: 14, PSDU: psdu},
		{At: time.Unix(12, 0), Channel: 14, PSDU: psdu},
	}
	capture := func(seed int64) []dsp.IQ {
		var out []dsp.IQ
		cfg := ReplayConfig{SamplesPerChip: testSPS, Seed: seed, SNRdB: 20, Obs: obs.NewRegistry()}
		if err := Replay(records, cfg, func(_ Record, sig dsp.IQ) error {
			out = append(out, sig)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := capture(42), capture(42), capture(43)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("replayed %d/%d bursts, want 2", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("burst %d lengths differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("burst %d diverges at sample %d despite equal seeds", i, j)
			}
		}
	}
	same := true
	for j := range a[0] {
		if a[0][j] != c[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

// TestReplayOffChannel: a record replayed while the receiver listens
// far away delivers only noise — the medium's channel model applies to
// playback exactly as it does to live traffic.
func TestReplayOffChannel(t *testing.T) {
	psdu := []byte{0x61, 0x88, 0x07, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0xaa, 0xbb, 0x00, 0x00}
	records := []Record{{At: time.Unix(1, 0), Channel: 26, PSDU: psdu}}
	rx, err := chip.CC1352R1().NewWazaBeeReceiver(testSPS)
	if err != nil {
		t.Fatal(err)
	}
	rx.Obs = obs.NewRegistry()
	cfg := ReplayConfig{SamplesPerChip: testSPS, Seed: 5, SNRdB: 25, Channel: 14, Obs: obs.NewRegistry()}
	dems, err := ReplayThroughReceiver(records, cfg, rx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dems) != 1 || dems[0] != nil {
		t.Fatalf("decoded a frame replayed 12 channels away: %v", dems)
	}
}

// TestReplaySkipsFrameless: raw records (no PSDU) are not replayable
// and must be skipped, not fail the playback.
func TestReplaySkipsFrameless(t *testing.T) {
	records := []Record{
		{At: time.Unix(1, 0), Channel: 14, Decoder: "raw"},
		{At: time.Unix(2, 0), Channel: 14, PSDU: []byte{0x01, 0x02, 0x03, 0x04, 0x05}},
	}
	n := 0
	cfg := ReplayConfig{SamplesPerChip: testSPS, Seed: 1, SNRdB: 20, Obs: obs.NewRegistry()}
	if err := Replay(records, cfg, func(Record, dsp.IQ) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("sink saw %d bursts, want 1", n)
	}
	if got := cfg.Obs.Counter("wazabee_capture_replayed_total").Value(); got != 1 {
		t.Errorf("replayed counter %d, want 1", got)
	}
}
