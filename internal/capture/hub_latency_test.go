package capture

import (
	"testing"
	"time"

	"wazabee/internal/obs"
)

// TestHubMaxQueueDepthHighWater pins the -queue sizing evidence: the
// high-water mark tracks the deepest the queue ever got, not the
// current depth, and survives a full drain.
func TestHubMaxQueueDepthHighWater(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	sub, err := hub.Subscribe("tcp:1", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		hub.Publish(testRecord(i))
	}
	if st := sub.Stats(); st.MaxQueueDepth != 5 || st.Queued != 5 {
		t.Fatalf("after 5 publishes: %+v, want max=5 queued=5", st)
	}
	for i := 0; i < 5; i++ {
		if _, ok := sub.TryRecv(); !ok {
			t.Fatalf("drain stalled at %d", i)
		}
	}
	if st := sub.Stats(); st.MaxQueueDepth != 5 || st.Queued != 0 {
		t.Fatalf("after drain: %+v, want max=5 queued=0", st)
	}
	// Refill shallower: the mark must not regress.
	hub.Publish(testRecord(9))
	if st := sub.Stats(); st.MaxQueueDepth != 5 {
		t.Fatalf("high-water regressed: %+v", st)
	}

	snaps := hub.Snapshot()
	if len(snaps) != 1 || snaps[0].Name != "tcp:1" || snaps[0].MaxQueueDepth != 5 {
		t.Fatalf("hub snapshot %+v, want one tcp:1 entry with max 5", snaps)
	}
	hub.Close()
}

// TestHubSnapshotSorted checks Snapshot enumerates live subscribers in
// name order and omits departed ones.
func TestHubSnapshotSorted(t *testing.T) {
	hub := NewHub(obs.NewRegistry())
	for _, name := range []string{"zep", "pcap", "tcp:7"} {
		if _, err := hub.Subscribe(name, 4); err != nil {
			t.Fatal(err)
		}
	}
	got := hub.Snapshot()
	want := []string{"pcap", "tcp:7", "zep"}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Fatalf("snapshot order %v, want %v", got, want)
		}
	}
	hub.Close()
	if left := hub.Snapshot(); len(left) != 0 {
		t.Fatalf("closed hub still snapshots %v", left)
	}
}

// TestHubLatencyStages checks the hub's three latency stages: publish
// and deliver observe only origin-stamped records, while queue
// residency is observed for every pop regardless of stamping.
func TestHubLatencyStages(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	sub, err := hub.Subscribe("tcp:1", 4)
	if err != nil {
		t.Fatal(err)
	}
	hPublish := obs.LatencyHistogram(reg, "publish")
	hQueue := obs.LatencyHistogram(reg, "queue", "subscriber", "tcp:1")
	hDeliver := obs.LatencyHistogram(reg, "deliver", "subscriber", "tcp:1")

	stamped := testRecord(1)
	stamped.Origin = time.Now().Add(-time.Millisecond)
	hub.Publish(stamped)
	hub.Publish(testRecord(2)) // unstamped: replayed/file traffic
	for i := 0; i < 2; i++ {
		if _, ok := sub.TryRecv(); !ok {
			t.Fatalf("record %d missing", i)
		}
	}

	if got := hPublish.Count(); got != 1 {
		t.Errorf("publish stage observed %d, want 1 (unstamped must skip)", got)
	}
	if got := hQueue.Count(); got != 2 {
		t.Errorf("queue stage observed %d, want 2 (residency is unconditional)", got)
	}
	if got := hDeliver.Count(); got != 1 {
		t.Errorf("deliver stage observed %d, want 1 (unstamped must skip)", got)
	}
	if sum := hDeliver.Sum(); sum < 0.001 {
		t.Errorf("deliver latency sum %.6fs, want >= the 1ms origin offset", sum)
	}
	hub.Close()
}

// TestHubDropFlightEvent checks a drop-oldest eviction lands in the
// flight recorder with the evicted frame's sequence number, alongside
// the subscribe lifecycle event.
func TestHubDropFlightEvent(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	hub.Flight = obs.NewFlight(32)
	sub, err := hub.Subscribe("slow", 1)
	if err != nil {
		t.Fatal(err)
	}
	first := testRecord(0)
	first.Seq = 41
	hub.Publish(first)
	second := testRecord(1)
	second.Seq = 42
	hub.Publish(second) // evicts seq 41

	var drops, subscribes int
	for _, ev := range hub.Flight.Snapshot() {
		switch ev.Kind {
		case "drop":
			drops++
			if ev.Frame != 41 || ev.Subscriber != "slow" || ev.Component != "hub" {
				t.Errorf("drop event %+v, want frame 41 on slow", ev)
			}
		case "subscribe":
			subscribes++
		}
	}
	if drops != 1 || subscribes != 1 {
		t.Fatalf("flight saw %d drops and %d subscribes, want 1 and 1", drops, subscribes)
	}
	if rec, ok := sub.TryRecv(); !ok || rec.Seq != 42 {
		t.Fatalf("survivor record %+v ok=%v, want seq 42", rec, ok)
	}
	hub.Close()
}
