package capture

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"wazabee/internal/obs"
)

func testRecord(i int) Record {
	return Record{At: time.Unix(int64(i), 0), Channel: 14, Decoder: "wazabee", PSDU: []byte{byte(i)}}
}

func TestHubFanOut(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	a, err := hub.Subscribe("a", 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Subscribe("b", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if n := hub.Publish(testRecord(i)); n != 2 {
			t.Fatalf("publish reached %d subscribers, want 2", n)
		}
	}
	hub.Close()
	for _, sub := range []*Subscription{a, b} {
		for i := 0; i < 5; i++ {
			rec, ok := sub.Recv()
			if !ok {
				t.Fatalf("%s: stream ended at %d", sub.Name(), i)
			}
			if rec.PSDU[0] != byte(i) {
				t.Errorf("%s: record %d out of order: %x", sub.Name(), i, rec.PSDU)
			}
		}
		if _, ok := sub.Recv(); ok {
			t.Errorf("%s: Recv returned a record after close+drain", sub.Name())
		}
		st := sub.Stats()
		if st.Offered != 5 || st.Delivered != 5 || st.Dropped != 0 {
			t.Errorf("%s: stats %+v, want 5/5/0", sub.Name(), st)
		}
	}
}

// TestHubDropOldest pins the backpressure policy: a full queue evicts
// its oldest record, so a slow consumer sees the most recent traffic.
func TestHubDropOldest(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	sub, err := hub.Subscribe("slow", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		hub.Publish(testRecord(i))
	}
	st := sub.Stats()
	if st.Offered != 5 || st.Dropped != 3 || st.Queued != 2 {
		t.Fatalf("stats %+v, want offered 5, dropped 3, queued 2", st)
	}
	// The survivors are the two newest records, in order.
	for _, want := range []byte{3, 4} {
		rec, ok := sub.TryRecv()
		if !ok || rec.PSDU[0] != want {
			t.Fatalf("got %v/%v, want record %d", rec.PSDU, ok, want)
		}
	}
	if got := reg.Counter("wazabee_capture_dropped_total", "subscriber", "slow").Value(); got != 3 {
		t.Errorf("dropped counter %d, want 3", got)
	}
	if got := reg.Counter("wazabee_capture_delivered_total", "subscriber", "slow").Value(); got != 2 {
		t.Errorf("delivered counter %d, want 2", got)
	}
	hub.Close()
}

func TestSubscriptionCloseCountsQueuedAsDropped(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(reg)
	sub, err := hub.Subscribe("leaver", 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		hub.Publish(testRecord(i))
	}
	sub.Close()
	st := sub.Stats()
	if st.Offered != 3 || st.Delivered != 0 || st.Dropped != 3 || st.Queued != 0 {
		t.Fatalf("stats after unsubscribe %+v, want 3 offered all dropped", st)
	}
	// The hub no longer offers to it.
	hub.Publish(testRecord(9))
	if st := sub.Stats(); st.Offered != 3 {
		t.Errorf("unsubscribed subscription still offered records: %+v", st)
	}
	hub.Close()
}

func TestSubscribeValidation(t *testing.T) {
	hub := NewHub(obs.NewRegistry())
	if _, err := hub.Subscribe("x", 0); err == nil {
		t.Error("accepted a zero-depth queue")
	}
	hub.Close()
	if _, err := hub.Subscribe("late", 4); err == nil {
		t.Error("subscribed to a closed hub")
	}
	if hub.Publish(testRecord(0)) != 0 {
		t.Error("published on a closed hub")
	}
	hub.Close() // idempotent
}

// TestHubRaceHammer is the concurrency gate of the subsystem: one
// producer, eight long-lived subscribers of varying speeds, plus four
// goroutines churning subscribe/unsubscribe the whole time — run under
// -race by the Makefile's ci target. Afterwards the accounting must be
// exact for every subscriber: offered == delivered + dropped, the obs
// counters must agree with the internal stats, and for the long-lived
// subscribers offered == hub published, so
// published − delivered == wazabee_capture_dropped_total.
func TestHubRaceHammer(t *testing.T) {
	const (
		subscribers = 8
		published   = 3000
		churners    = 4
	)
	reg := obs.NewRegistry()
	hub := NewHub(reg)

	var consumers sync.WaitGroup
	subs := make([]*Subscription, subscribers)
	for i := range subs {
		sub, err := hub.Subscribe(fmt.Sprintf("sub%d", i), 2+i)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		consumers.Add(1)
		go func(i int, sub *Subscription) {
			defer consumers.Done()
			for {
				if _, ok := sub.Recv(); !ok {
					return
				}
				if i%2 == 0 {
					// Half the consumers yield constantly so the
					// drop-oldest path actually runs.
					runtime.Gosched()
				}
			}
		}(i, sub)
	}

	stopChurn := make(chan struct{})
	var churn sync.WaitGroup
	for g := 0; g < churners; g++ {
		churn.Add(1)
		go func(g int) {
			defer churn.Done()
			for n := 0; ; n++ {
				select {
				case <-stopChurn:
					return
				default:
				}
				sub, err := hub.Subscribe(fmt.Sprintf("churn%d-%d", g, n), 2)
				if err != nil {
					return // hub closed
				}
				sub.TryRecv()
				sub.Close()
				if st := sub.Stats(); st.Offered != st.Delivered+st.Dropped {
					t.Errorf("churn sub %s: offered %d != delivered %d + dropped %d",
						sub.Name(), st.Offered, st.Delivered, st.Dropped)
					return
				}
			}
		}(g)
	}

	for i := 0; i < published; i++ {
		hub.Publish(testRecord(i))
	}
	close(stopChurn)
	churn.Wait()
	hub.Close()
	consumers.Wait()

	if got := hub.Published(); got != published {
		t.Fatalf("hub published %d, want %d", got, published)
	}
	if got := reg.Counter("wazabee_capture_published_total").Value(); got != published {
		t.Fatalf("published counter %d, want %d", got, published)
	}
	sawDrop := false
	for i, sub := range subs {
		name := fmt.Sprintf("sub%d", i)
		st := sub.Stats()
		if st.Offered != published {
			t.Errorf("%s offered %d, want %d (subscribed for the whole run)", name, st.Offered, published)
		}
		if st.Queued != 0 {
			t.Errorf("%s still queues %d records after drain", name, st.Queued)
		}
		if st.Offered != st.Delivered+st.Dropped {
			t.Errorf("%s: offered %d != delivered %d + dropped %d", name, st.Offered, st.Delivered, st.Dropped)
		}
		// The obs counters are the same numbers, exactly.
		if got := reg.Counter("wazabee_capture_delivered_total", "subscriber", name).Value(); got != st.Delivered {
			t.Errorf("%s delivered counter %d, want %d", name, got, st.Delivered)
		}
		dropped := reg.Counter("wazabee_capture_dropped_total", "subscriber", name).Value()
		if dropped != st.Dropped {
			t.Errorf("%s dropped counter %d, want %d", name, dropped, st.Dropped)
		}
		// The acceptance identity: published − delivered = dropped.
		if published-st.Delivered != dropped {
			t.Errorf("%s: published %d − delivered %d != dropped %d", name, published, st.Delivered, dropped)
		}
		if st.Dropped > 0 {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Log("warning: no subscriber dropped anything; backpressure path not exercised this run")
	}
}
