package capture

import (
	"encoding/binary"
	"fmt"
	"time"
)

// ZEP v2 — the Zigbee Encapsulation Protocol used by 802.15.4 sniffers
// (exegin, Wireshark's packet-zep dissector) to ship frames with their
// radio metadata over UDP. A v2 data packet is a fixed 32-byte header
// followed by the frame:
//
//	offset  size  field
//	0       2     preamble "EX"
//	2       1     version (2)
//	3       1     type (1 = data, 2 = ack)
//	4       1     802.15.4 channel
//	5       2     device id (big-endian)
//	7       1     CRC/LQI mode (1 = payload ends with the real FCS)
//	8       1     LQI
//	9       8     NTP timestamp (seconds + fraction, big-endian)
//	17      4     sequence number (big-endian)
//	21      10    reserved
//	31      1     payload length
//	32      n     payload (the PSDU, FCS included)
const (
	// ZEPPort is the IANA-registered UDP port of the protocol.
	ZEPPort = 17754

	zepHeaderLen = 32
	zepVersion   = 2
	zepTypeData  = 1
	zepTypeAck   = 2
	// zepModeCRC marks the last two payload bytes as the genuine FCS —
	// true for WazaBee captures, which receive with CRC checking
	// disabled and keep the FCS bytes in the PSDU.
	zepModeCRC = 1

	// ntpEpochOffset converts between the Unix epoch (1970) and the NTP
	// epoch (1900) in seconds.
	ntpEpochOffset = 2208988800
)

// EncodeZEP packs a record and a stream sequence number into one ZEP v2
// data datagram.
func EncodeZEP(rec Record, deviceID uint16, seq uint32) ([]byte, error) {
	if rec.Channel < 0 || rec.Channel > 255 {
		return nil, fmt.Errorf("capture: channel %d outside uint8 range", rec.Channel)
	}
	if len(rec.PSDU) == 0 || len(rec.PSDU) > 255 {
		return nil, fmt.Errorf("capture: ZEP payload must be 1–255 bytes, have %d", len(rec.PSDU))
	}
	b := make([]byte, zepHeaderLen, zepHeaderLen+len(rec.PSDU))
	b[0], b[1] = 'E', 'X'
	b[2] = zepVersion
	b[3] = zepTypeData
	b[4] = uint8(rec.Channel)
	binary.BigEndian.PutUint16(b[5:], deviceID)
	b[7] = zepModeCRC
	b[8] = rec.LQI
	sec, frac := toNTP(rec.At)
	binary.BigEndian.PutUint32(b[9:], sec)
	binary.BigEndian.PutUint32(b[13:], frac)
	binary.BigEndian.PutUint32(b[17:], seq)
	b[31] = uint8(len(rec.PSDU))
	return append(b, rec.PSDU...), nil
}

// EncodeZEPRecord packs a record into a ZEP v2 data datagram using the
// record's own stream sequence number, so the datagram's sequence field
// stays linked to the capture loop that produced the frame (and to the
// record's timestamp) instead of being renumbered per ZEP sink.
func EncodeZEPRecord(rec Record, deviceID uint16) ([]byte, error) {
	return EncodeZEP(rec, deviceID, rec.Seq)
}

// DecodeZEP parses a ZEP v2 data datagram back into a record (decoder
// tag "zep") plus the device id and sequence number. Corrupt input
// yields an error, never a panic; v2 ack packets are rejected with a
// descriptive error (they carry no frame).
func DecodeZEP(b []byte) (Record, uint16, uint32, error) {
	if len(b) < 4 {
		return Record{}, 0, 0, fmt.Errorf("capture: ZEP datagram truncated at %d bytes", len(b))
	}
	if b[0] != 'E' || b[1] != 'X' {
		return Record{}, 0, 0, fmt.Errorf("capture: bad ZEP preamble %q", b[:2])
	}
	if b[2] != zepVersion {
		return Record{}, 0, 0, fmt.Errorf("capture: unsupported ZEP version %d", b[2])
	}
	switch b[3] {
	case zepTypeData:
	case zepTypeAck:
		return Record{}, 0, 0, fmt.Errorf("capture: ZEP ack carries no frame")
	default:
		return Record{}, 0, 0, fmt.Errorf("capture: unknown ZEP type %d", b[3])
	}
	if len(b) < zepHeaderLen {
		return Record{}, 0, 0, fmt.Errorf("capture: ZEP data header truncated at %d bytes", len(b))
	}
	plen := int(b[31])
	if plen == 0 {
		return Record{}, 0, 0, fmt.Errorf("capture: ZEP data packet with empty payload")
	}
	if len(b) < zepHeaderLen+plen {
		return Record{}, 0, 0, fmt.Errorf("capture: ZEP payload truncated (%d < %d)", len(b)-zepHeaderLen, plen)
	}
	rec := Record{
		At:      fromNTP(binary.BigEndian.Uint32(b[9:]), binary.BigEndian.Uint32(b[13:])),
		Channel: int(b[4]),
		LQI:     b[8],
		Decoder: "zep",
		PSDU:    append([]byte(nil), b[zepHeaderLen:zepHeaderLen+plen]...),
	}
	deviceID := binary.BigEndian.Uint16(b[5:])
	seq := binary.BigEndian.Uint32(b[17:])
	return rec, deviceID, seq, nil
}

// toNTP converts a wall-clock time to the 64-bit NTP format: seconds
// since 1900 and a 2^-32 s binary fraction.
func toNTP(t time.Time) (sec, frac uint32) {
	sec = uint32(t.Unix() + ntpEpochOffset)
	frac = uint32((uint64(t.Nanosecond()) << 32) / 1_000_000_000)
	return sec, frac
}

// fromNTP is the inverse; sub-second precision is the fraction's 2^-32 s
// granularity, so a round trip can floor the nanosecond count by one.
func fromNTP(sec, frac uint32) time.Time {
	unix := int64(sec) - ntpEpochOffset
	ns := (uint64(frac) * 1_000_000_000) >> 32
	return time.Unix(unix, int64(ns))
}
