package capture

import (
	"math"
	"time"

	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs/link"
)

// RSSIFromIQ estimates a received signal strength indication from a
// baseband capture: the mean power in dB. The simulation has no
// absolute calibration, so treat it as a relative level (like the
// uncalibrated RSSI registers of real BLE chips).
func RSSIFromIQ(sig dsp.IQ) float64 {
	return 10 * math.Log10(sig.Power()+1e-12)
}

// LQIFromDistance maps the despreader's worst per-symbol chip distance
// (0–16 of 31 chips; 15 is the receiver's default quality gate) onto
// the 802.15.4 LQI scale, 255 = perfect correlation.
func LQIFromDistance(worst int) uint8 {
	lqi := 255 - 16*worst
	if lqi < 0 {
		lqi = 0
	}
	return uint8(lqi)
}

// NewLiveRecord builds the record for one live capture period: decoder
// tag "wazabee" with the recovered PSDU when the receiver decoded the
// burst (dem non-nil), or a PSDU-less "raw" record when it did not —
// so below-frame consumers such as the IDS still see every period. The
// waveform rides along in the in-memory IQ field either way.
func NewLiveRecord(at time.Time, channel int, sig dsp.IQ, dem *ieee802154.Demodulated, snrDB float64) Record {
	rec := Record{
		At:      at,
		Channel: channel,
		RSSIdBm: RSSIFromIQ(sig),
		SNRdB:   snrDB,
		Decoder: "raw",
		IQ:      sig,
	}
	if dem != nil {
		rec.Decoder = "wazabee"
		rec.PSDU = append([]byte(nil), dem.PPDU.PSDU...)
		rec.LQI = LQIFromDistance(dem.WorstChipDistance)
	}
	return rec
}

// NewStatsRecord builds the record for one live capture period from the
// receiver's per-frame link diagnostics: the measured RSSI/SNR/CFO, the
// computed 802.15.4 LQI and the despreader's chip-error evidence, plus
// the capture loop's sequence number so downstream encoders (ZEP, TCP
// subscribers) stay sequence-linked to the source. fallbackSNRdB fills
// the SNR field when the frame carried no valid in-band estimate (e.g.
// a sync failure); pass the configured link SNR, or zero when unknown.
func NewStatsRecord(at time.Time, channel int, seq uint64, sig dsp.IQ, dem *ieee802154.Demodulated, st *link.Stats, fallbackSNRdB float64) Record {
	rec := NewLiveRecord(at, channel, sig, dem, fallbackSNRdB)
	rec.Seq = uint32(seq)
	if st == nil {
		return rec
	}
	rec.RSSIdBm = st.RSSIdBFS
	if st.SNRValid {
		rec.SNRdB = st.SNRdB
	}
	rec.LQI = st.LQI
	rec.CFOHz = st.CFOHz
	rec.SyncCorr = st.SyncCorr
	rec.ChipErrors = uint32(st.ChipErrors)
	rec.ChipsCompared = uint32(st.ChipsCompared)
	return rec
}
