package capture

import (
	"fmt"
	"time"

	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/ieee802154"
	"wazabee/internal/obs"
	"wazabee/internal/radio"
)

// ReplayConfig parameterises playing a recorded capture back through
// the simulated radio medium. All randomness (noise, burst timing)
// flows from Seed, so two replays of the same records are sample-exact
// — any saved capture is a reproducible regression input.
type ReplayConfig struct {
	// SamplesPerChip is the baseband oversampling factor (≥ 2).
	SamplesPerChip int
	// Seed drives the replay medium's deterministic randomness.
	Seed int64
	// SNRdB is the link quality the replayed bursts are degraded to.
	SNRdB float64
	// CFOHz models the crystal offset between the replayed transmitter
	// and the listening receiver.
	CFOHz float64
	// Channel tunes the listening receiver. Zero listens on each
	// record's own channel (falling back to channel 14, the repo-wide
	// default victim channel, for records whose channel is unknown —
	// e.g. recovered from a bare pcap).
	Channel int
	// TimeScale paces the playback against the records' timestamps:
	// 1 replays in real time, 0.5 at double speed, 0 (the default) as
	// fast as possible.
	TimeScale float64
	// Obs receives the replay counters and the medium's metrics; nil
	// falls back to the process default registry.
	Obs *obs.Registry
}

// replayFallbackChannel is where records with no channel metadata are
// replayed: the default victim network channel of the whole repo.
const replayFallbackChannel = 14

// Replay re-modulates each record's PSDU with the legitimate O-QPSK
// PHY, propagates it through a seeded radio.Medium and hands the
// resulting waveform — what a receiver's ADC would have seen — to
// sink together with the originating record. Records without a PSDU
// are skipped. A sink error stops the playback.
func Replay(records []Record, cfg ReplayConfig, sink func(Record, dsp.IQ) error) error {
	if sink == nil {
		return fmt.Errorf("capture: nil replay sink")
	}
	phy, err := ieee802154.NewPHY(cfg.SamplesPerChip)
	if err != nil {
		return err
	}
	medium, err := radio.NewMedium(float64(cfg.SamplesPerChip)*ieee802154.ChipRate, cfg.Seed)
	if err != nil {
		return err
	}
	reg := obs.Or(cfg.Obs)
	medium.Obs = reg
	link := radio.Link{SNRdB: cfg.SNRdB, CFOHz: cfg.CFOHz, LeadSamples: 200, LagSamples: 120}

	var prev time.Time
	for _, rec := range records {
		if len(rec.PSDU) == 0 {
			continue
		}
		if cfg.TimeScale > 0 && !prev.IsZero() && rec.At.After(prev) {
			time.Sleep(time.Duration(float64(rec.At.Sub(prev)) * cfg.TimeScale))
		}
		prev = rec.At

		txChannel := rec.Channel
		if txChannel == 0 {
			txChannel = replayFallbackChannel
		}
		rxChannel := cfg.Channel
		if rxChannel == 0 {
			rxChannel = txChannel
		}
		txFreq, err := ieee802154.ChannelFrequencyMHz(txChannel)
		if err != nil {
			return fmt.Errorf("capture: replay record channel: %w", err)
		}
		rxFreq, err := ieee802154.ChannelFrequencyMHz(rxChannel)
		if err != nil {
			return fmt.Errorf("capture: replay listen channel: %w", err)
		}

		ppdu, err := ieee802154.NewPPDU(rec.PSDU)
		if err != nil {
			return err
		}
		sig, err := phy.Modulate(ppdu)
		if err != nil {
			return err
		}
		out, err := medium.Replay(sig, txFreq, rxFreq, link)
		if err != nil {
			return err
		}
		reg.Counter("wazabee_capture_replayed_total").Inc()
		if err := sink(rec, out); err != nil {
			return err
		}
	}
	return nil
}

// ReplayThroughReceiver plays records into a WazaBee receiver — the
// diverted-BLE primitive hearing a recording of the network it once
// sniffed. The result is index-aligned with the replayable (PSDU-
// bearing) records: each entry is the decoded demodulation or nil when
// that burst was not received.
func ReplayThroughReceiver(records []Record, cfg ReplayConfig, rx *core.Receiver) ([]*ieee802154.Demodulated, error) {
	if rx == nil {
		return nil, fmt.Errorf("capture: nil receiver")
	}
	var out []*ieee802154.Demodulated
	err := Replay(records, cfg, func(_ Record, sig dsp.IQ) error {
		dem, err := rx.Receive(sig)
		if err != nil {
			out = append(out, nil)
			return nil // a miss is data, not a replay failure
		}
		out = append(out, dem)
		return nil
	})
	return out, err
}
