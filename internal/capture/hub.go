package capture

import (
	"fmt"
	"sync"

	"wazabee/internal/obs"
)

// Hub fans one producer's records out to N subscribers, each behind a
// bounded queue with an explicit drop-oldest backpressure policy: a
// publisher never blocks on a slow consumer, the slow consumer loses
// its oldest queued records, and every loss is accounted — per
// subscriber — in the obs registry. This is the serving shape the
// ROADMAP aims at (one sniffer, many concurrent consumers) in a single
// process.
//
// Accounting invariant: for every subscriber, at every quiescent point,
//
//	offered == delivered + dropped + queued
//
// and a subscriber that unsubscribes has its still-queued records
// folded into dropped, so the invariant degenerates to
// offered == delivered + dropped once it is gone. A subscriber present
// for a hub's whole lifetime has offered == hub published.
type Hub struct {
	reg        *obs.Registry
	cPublished *obs.Counter
	gSubs      *obs.Gauge

	// Log receives subscriber lifecycle events (subscribe, unsubscribe,
	// stream end); nil falls back to the process default logger. Set it
	// before the first Subscribe.
	Log *obs.Logger

	mu        sync.Mutex
	subs      map[*Subscription]struct{}
	closed    bool
	published uint64
}

// NewHub builds a hub reporting into reg; nil falls back to the process
// default registry.
func NewHub(reg *obs.Registry) *Hub {
	r := obs.Or(reg)
	return &Hub{
		reg:        r,
		cPublished: r.Counter("wazabee_capture_published_total"),
		gSubs:      r.Gauge("wazabee_capture_subscribers"),
		subs:       make(map[*Subscription]struct{}),
	}
}

// Subscribe registers a consumer under a name (the `subscriber` label
// of its metric series) with a queue bounded at depth records.
func (h *Hub) Subscribe(name string, depth int) (*Subscription, error) {
	if depth < 1 {
		return nil, fmt.Errorf("capture: subscription depth %d < 1", depth)
	}
	s := &Subscription{
		hub:        h,
		name:       name,
		buf:        make([]Record, depth),
		cOffered:   h.reg.Counter("wazabee_capture_offered_total", "subscriber", name),
		cDelivered: h.reg.Counter("wazabee_capture_delivered_total", "subscriber", name),
		cDropped:   h.reg.Counter("wazabee_capture_dropped_total", "subscriber", name),
		gDepth:     h.reg.Gauge("wazabee_capture_queue_depth", "subscriber", name),
	}
	s.cond = sync.NewCond(&s.mu)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("capture: hub is closed")
	}
	h.subs[s] = struct{}{}
	h.gSubs.Set(float64(len(h.subs)))
	n := len(h.subs)
	obs.OrLogger(h.Log).Info("hub", "subscriber joined", "subscriber", name, "depth", depth, "subscribers", n)
	return s, nil
}

// Publish offers one record to every current subscriber and returns how
// many were offered it. It never blocks on consumers; a full queue
// drops its oldest record instead. Publishing on a closed hub is a
// no-op returning zero.
func (h *Hub) Publish(rec Record) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	h.published++
	h.cPublished.Inc()
	for s := range h.subs {
		s.offer(rec)
	}
	return len(h.subs)
}

// Published returns the number of records accepted by Publish.
func (h *Hub) Published() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published
}

// Close ends the stream: subscribers drain whatever is already queued,
// then their Recv returns false. Safe to call more than once.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*Subscription]struct{})
	h.gSubs.Set(0)
	published := h.published
	h.mu.Unlock()

	for _, s := range subs {
		s.finish()
	}
	obs.OrLogger(h.Log).Info("hub", "stream closed", "published", published, "subscribers", len(subs))
}

func (h *Hub) remove(s *Subscription) {
	h.mu.Lock()
	removed := false
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		h.gSubs.Set(float64(len(h.subs)))
		removed = true
	}
	h.mu.Unlock()
	if removed {
		st := s.Stats()
		obs.OrLogger(h.Log).Info("hub", "subscriber left",
			"subscriber", s.name, "delivered", st.Delivered, "dropped", st.Dropped)
	}
}

// SubStats is a subscription's accounting snapshot.
type SubStats struct {
	// Offered counts records the hub handed to this subscriber.
	Offered uint64
	// Delivered counts records the consumer actually received.
	Delivered uint64
	// Dropped counts records lost to the drop-oldest policy (plus any
	// still queued at unsubscribe time).
	Dropped uint64
	// Queued is the current queue depth.
	Queued int
}

// Subscription is one consumer's bounded view of a hub's stream.
type Subscription struct {
	hub  *Hub
	name string

	cOffered   *obs.Counter
	cDelivered *obs.Counter
	cDropped   *obs.Counter
	gDepth     *obs.Gauge

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Record // ring buffer, fixed capacity
	head   int
	n      int
	closed bool

	offered, delivered, dropped uint64
}

// Name returns the subscriber label.
func (s *Subscription) Name() string { return s.name }

// offer enqueues a record, evicting the oldest when full (publisher side).
func (s *Subscription) offer(rec Record) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		s.cDropped.Inc()
	}
	s.buf[(s.head+s.n)%len(s.buf)] = rec
	s.n++
	s.offered++
	s.cOffered.Inc()
	s.gDepth.Set(float64(s.n))
	s.cond.Signal()
	s.mu.Unlock()
}

// Recv blocks for the next record. It returns ok=false once the stream
// has ended (hub closed or unsubscribed) and the queue is drained.
func (s *Subscription) Recv() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.n == 0 {
		return Record{}, false
	}
	return s.pop(), true
}

// TryRecv returns the next queued record without blocking. ok=false
// means the queue is momentarily empty (or the stream ended — check
// Closed to tell them apart).
func (s *Subscription) TryRecv() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Record{}, false
	}
	return s.pop(), true
}

// pop removes the head record; callers hold s.mu.
func (s *Subscription) pop() Record {
	rec := s.buf[s.head]
	s.buf[s.head] = Record{} // release references
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	s.delivered++
	s.cDelivered.Inc()
	s.gDepth.Set(float64(s.n))
	return rec
}

// Closed reports whether the stream has ended (records may still be
// queued).
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// finish ends the stream from the producer side, leaving the queue for
// the consumer to drain.
func (s *Subscription) finish() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close unsubscribes: no further records arrive and anything still
// queued is discarded into the dropped count, preserving the
// offered == delivered + dropped invariant. Safe to call more than
// once, and after the hub itself closed.
func (s *Subscription) Close() {
	s.hub.remove(s)
	s.mu.Lock()
	if s.n > 0 {
		s.dropped += uint64(s.n)
		s.cDropped.Add(uint64(s.n))
		for i := range s.buf {
			s.buf[i] = Record{}
		}
		s.n = 0
		s.gDepth.Set(0)
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Stats returns the subscription's current accounting.
func (s *Subscription) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{Offered: s.offered, Delivered: s.delivered, Dropped: s.dropped, Queued: s.n}
}
