package capture

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"wazabee/internal/obs"
)

// Hub fans one producer's records out to N subscribers, each behind a
// bounded queue with an explicit drop-oldest backpressure policy: a
// publisher never blocks on a slow consumer, the slow consumer loses
// its oldest queued records, and every loss is accounted — per
// subscriber — in the obs registry. This is the serving shape the
// ROADMAP aims at (one sniffer, many concurrent consumers) in a single
// process.
//
// Accounting invariant: for every subscriber, at every quiescent point,
//
//	offered == delivered + dropped + queued
//
// and a subscriber that unsubscribes has its still-queued records
// folded into dropped, so the invariant degenerates to
// offered == delivered + dropped once it is gone. A subscriber present
// for a hub's whole lifetime has offered == hub published.
type Hub struct {
	reg        *obs.Registry
	cPublished *obs.Counter
	gSubs      *obs.Gauge
	hPublish   *obs.Histogram // wazabee_latency_seconds{stage="publish"}

	// Log receives subscriber lifecycle events (subscribe, unsubscribe,
	// stream end); nil falls back to the process default logger. Set it
	// before the first Subscribe.
	Log *obs.Logger

	// Flight receives the hub's flight-recorder events (subscriber
	// lifecycle, per-frame drops); nil falls back to the process default
	// recorder. Set it before the first Subscribe.
	Flight *obs.Flight

	mu        sync.Mutex
	subs      map[*Subscription]struct{}
	closed    bool
	published uint64
}

// NewHub builds a hub reporting into reg; nil falls back to the process
// default registry.
func NewHub(reg *obs.Registry) *Hub {
	r := obs.Or(reg)
	return &Hub{
		reg:        r,
		cPublished: r.Counter("wazabee_capture_published_total"),
		gSubs:      r.Gauge("wazabee_capture_subscribers"),
		hPublish:   obs.LatencyHistogram(r, "publish"),
		subs:       make(map[*Subscription]struct{}),
	}
}

// Subscribe registers a consumer under a name (the `subscriber` label
// of its metric series) with a queue bounded at depth records.
func (h *Hub) Subscribe(name string, depth int) (*Subscription, error) {
	if depth < 1 {
		return nil, fmt.Errorf("capture: subscription depth %d < 1", depth)
	}
	s := &Subscription{
		hub:        h,
		name:       name,
		buf:        make([]Record, depth),
		enq:        make([]time.Time, depth),
		flight:     obs.OrFlight(h.Flight),
		cOffered:   h.reg.Counter("wazabee_capture_offered_total", "subscriber", name),
		cDelivered: h.reg.Counter("wazabee_capture_delivered_total", "subscriber", name),
		cDropped:   h.reg.Counter("wazabee_capture_dropped_total", "subscriber", name),
		gDepth:     h.reg.Gauge("wazabee_capture_queue_depth", "subscriber", name),
		hQueue:     obs.LatencyHistogram(h.reg, "queue", "subscriber", name),
		hDeliver:   obs.LatencyHistogram(h.reg, "deliver", "subscriber", name),
	}
	s.cond = sync.NewCond(&s.mu)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, fmt.Errorf("capture: hub is closed")
	}
	h.subs[s] = struct{}{}
	h.gSubs.Set(float64(len(h.subs)))
	n := len(h.subs)
	obs.OrLogger(h.Log).Info("hub", "subscriber joined", "subscriber", name, "depth", depth, "subscribers", n)
	s.flight.Record(obs.FlightEvent{
		Kind: "subscribe", Component: "hub", Frame: -1, Subscriber: name,
		Detail: fmt.Sprintf("depth %d", depth),
	})
	return s, nil
}

// Publish offers one record to every current subscriber and returns how
// many were offered it. It never blocks on consumers; a full queue
// drops its oldest record instead. Publishing on a closed hub is a
// no-op returning zero. Records stamped with an Origin observe the
// emit→publish latency; all records stamp their queue-entry time so
// per-subscriber queue residency is measured regardless.
func (h *Hub) Publish(rec Record) int {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return 0
	}
	h.published++
	h.cPublished.Inc()
	if !rec.Origin.IsZero() {
		h.hPublish.Observe(obs.DurationSeconds(now.Sub(rec.Origin)))
	}
	for s := range h.subs {
		s.offer(rec, now)
	}
	return len(h.subs)
}

// Published returns the number of records accepted by Publish.
func (h *Hub) Published() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published
}

// Close ends the stream: subscribers drain whatever is already queued,
// then their Recv returns false. Safe to call more than once.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[*Subscription]struct{})
	h.gSubs.Set(0)
	published := h.published
	h.mu.Unlock()

	for _, s := range subs {
		s.finish()
	}
	obs.OrLogger(h.Log).Info("hub", "stream closed", "published", published, "subscribers", len(subs))
}

func (h *Hub) remove(s *Subscription) {
	h.mu.Lock()
	removed := false
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
		h.gSubs.Set(float64(len(h.subs)))
		removed = true
	}
	h.mu.Unlock()
	if removed {
		st := s.Stats()
		obs.OrLogger(h.Log).Info("hub", "subscriber left",
			"subscriber", s.name, "delivered", st.Delivered, "dropped", st.Dropped)
		s.flight.Record(obs.FlightEvent{
			Kind: "unsubscribe", Component: "hub", Frame: -1, Subscriber: s.name,
			Detail: fmt.Sprintf("delivered %d, dropped %d, max queue %d",
				st.Delivered, st.Dropped, st.MaxQueueDepth),
		})
	}
}

// SubStats is a subscription's accounting snapshot.
type SubStats struct {
	// Offered counts records the hub handed to this subscriber.
	Offered uint64
	// Delivered counts records the consumer actually received.
	Delivered uint64
	// Dropped counts records lost to the drop-oldest policy (plus any
	// still queued at unsubscribe time).
	Dropped uint64
	// Queued is the current queue depth.
	Queued int
	// MaxQueueDepth is the high-water mark the queue ever reached — the
	// evidence operators size the -queue flag from: a subscriber whose
	// high-water mark sits well below the configured depth never needed
	// that much buffer; one pinned at the depth was dropping.
	MaxQueueDepth int
}

// SubSnapshot couples a subscriber's name with its accounting, for
// whole-hub enumerations (the wazabeed shutdown table, health detail).
type SubSnapshot struct {
	Name string
	SubStats
}

// Snapshot returns the accounting of every currently subscribed
// consumer, sorted by name. Subscribers that already left are not
// included (their final stats were logged at departure).
func (h *Hub) Snapshot() []SubSnapshot {
	h.mu.Lock()
	subs := make([]*Subscription, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	out := make([]SubSnapshot, 0, len(subs))
	for _, s := range subs {
		out = append(out, SubSnapshot{Name: s.name, SubStats: s.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Subscription is one consumer's bounded view of a hub's stream.
type Subscription struct {
	hub    *Hub
	name   string
	flight *obs.Flight

	cOffered   *obs.Counter
	cDelivered *obs.Counter
	cDropped   *obs.Counter
	gDepth     *obs.Gauge
	hQueue     *obs.Histogram // wazabee_latency_seconds{stage="queue",subscriber}
	hDeliver   *obs.Histogram // wazabee_latency_seconds{stage="deliver",subscriber}

	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Record    // ring buffer, fixed capacity
	enq    []time.Time // per-slot enqueue stamps, parallel to buf
	head   int
	n      int
	closed bool

	offered, delivered, dropped uint64
	maxDepth                    int
}

// Name returns the subscriber label.
func (s *Subscription) Name() string { return s.name }

// offer enqueues a record, evicting the oldest when full (publisher
// side). now is the publish instant, shared across subscribers so one
// Publish takes one clock reading.
func (s *Subscription) offer(rec Record, now time.Time) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.buf) {
		old := s.buf[s.head]
		s.head = (s.head + 1) % len(s.buf)
		s.n--
		s.dropped++
		s.cDropped.Inc()
		s.flight.Record(obs.FlightEvent{
			At: now, Kind: "drop", Component: "hub",
			Frame: int64(old.Seq), Subscriber: s.name, Detail: "queue full, oldest evicted",
		})
	}
	idx := (s.head + s.n) % len(s.buf)
	s.buf[idx] = rec
	s.enq[idx] = now
	s.n++
	if s.n > s.maxDepth {
		s.maxDepth = s.n
	}
	s.offered++
	s.cOffered.Inc()
	s.gDepth.Set(float64(s.n))
	s.cond.Signal()
	s.mu.Unlock()
}

// Recv blocks for the next record. It returns ok=false once the stream
// has ended (hub closed or unsubscribed) and the queue is drained.
func (s *Subscription) Recv() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 && !s.closed {
		s.cond.Wait()
	}
	if s.n == 0 {
		return Record{}, false
	}
	return s.pop(), true
}

// TryRecv returns the next queued record without blocking. ok=false
// means the queue is momentarily empty (or the stream ended — check
// Closed to tell them apart).
func (s *Subscription) TryRecv() (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Record{}, false
	}
	return s.pop(), true
}

// pop removes the head record, observing its queue residency and — for
// origin-stamped records — the end-to-end emit→deliver latency; callers
// hold s.mu.
func (s *Subscription) pop() Record {
	now := time.Now()
	rec := s.buf[s.head]
	s.hQueue.Observe(obs.DurationSeconds(now.Sub(s.enq[s.head])))
	if !rec.Origin.IsZero() {
		s.hDeliver.Observe(obs.DurationSeconds(now.Sub(rec.Origin)))
	}
	s.buf[s.head] = Record{} // release references
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	s.delivered++
	s.cDelivered.Inc()
	s.gDepth.Set(float64(s.n))
	return rec
}

// Closed reports whether the stream has ended (records may still be
// queued).
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// finish ends the stream from the producer side, leaving the queue for
// the consumer to drain.
func (s *Subscription) finish() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Close unsubscribes: no further records arrive and anything still
// queued is discarded into the dropped count, preserving the
// offered == delivered + dropped invariant. Safe to call more than
// once, and after the hub itself closed.
func (s *Subscription) Close() {
	s.hub.remove(s)
	s.mu.Lock()
	if s.n > 0 {
		s.dropped += uint64(s.n)
		s.cDropped.Add(uint64(s.n))
		for i := range s.buf {
			s.buf[i] = Record{}
		}
		s.n = 0
		s.gDepth.Set(0)
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Stats returns the subscription's current accounting.
func (s *Subscription) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{
		Offered:       s.offered,
		Delivered:     s.delivered,
		Dropped:       s.dropped,
		Queued:        s.n,
		MaxQueueDepth: s.maxDepth,
	}
}
