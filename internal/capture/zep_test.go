package capture

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"
)

// TestZEPGoldenBytes pins one complete ZEP v2 data datagram, byte for
// byte — the exact payload Wireshark's packet-zep dissector expects on
// UDP/17754.
func TestZEPGoldenBytes(t *testing.T) {
	rec := Record{
		// Unix 1.5 s → NTP seconds 2208988801 (0x83aa7e81), fraction
		// 0.5 → 0x80000000.
		At:      time.Unix(1, 500000000),
		Channel: 14,
		LQI:     200,
		PSDU:    []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got, err := EncodeZEP(rec, 0x5742, 7)
	if err != nil {
		t.Fatal(err)
	}
	golden := "" +
		"4558" + // "EX"
		"02" + // version 2
		"01" + // type: data
		"0e" + // channel 14
		"5742" + // device id
		"01" + // CRC mode: payload ends with the real FCS
		"c8" + // LQI 200
		"83aa7e81" + "80000000" + // NTP timestamp
		"00000007" + // sequence
		"00000000000000000000" + // reserved
		"04" + // length
		"deadbeef"
	if hex.EncodeToString(got) != golden {
		t.Fatalf("ZEP datagram changed:\n got  %s\n want %s", hex.EncodeToString(got), golden)
	}
}

func TestZEPRoundTrip(t *testing.T) {
	rec := Record{
		At:      time.Unix(1700000000, 987654321),
		Channel: 26,
		LQI:     63,
		PSDU:    bytes.Repeat([]byte{0x3c}, 127),
	}
	datagram, err := EncodeZEP(rec, 0xbeef, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, deviceID, seq, err := DecodeZEP(datagram)
	if err != nil {
		t.Fatal(err)
	}
	if deviceID != 0xbeef || seq != 42 {
		t.Errorf("device/seq %#x/%d, want 0xbeef/42", deviceID, seq)
	}
	if got.Channel != rec.Channel || got.LQI != rec.LQI {
		t.Errorf("channel/LQI %d/%d, want %d/%d", got.Channel, got.LQI, rec.Channel, rec.LQI)
	}
	if !bytes.Equal(got.PSDU, rec.PSDU) {
		t.Errorf("PSDU %x, want %x", got.PSDU, rec.PSDU)
	}
	if got.Decoder != "zep" {
		t.Errorf("decoder %q, want zep", got.Decoder)
	}
	// The NTP fraction has 2^-32 s granularity: the timestamp survives
	// to within a nanosecond or two.
	if d := got.At.Sub(rec.At); d < -2*time.Nanosecond || d > 2*time.Nanosecond {
		t.Errorf("timestamp drifted %v over the round trip", d)
	}
}

func TestZEPDecodeRejectsCorruptInput(t *testing.T) {
	rec := Record{At: time.Unix(5, 0), Channel: 14, LQI: 1, PSDU: []byte{1, 2, 3}}
	good, err := EncodeZEP(rec, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short":             good[:3],
		"bad preamble":      append([]byte("XX"), good[2:]...),
		"bad version":       append([]byte{'E', 'X', 9}, good[3:]...),
		"ack":               {'E', 'X', 2, 2, 0, 0, 0, 1},
		"unknown type":      append([]byte{'E', 'X', 2, 7}, good[4:]...),
		"truncated header":  good[:20],
		"truncated payload": good[:len(good)-1],
		"zero payload":      func() []byte { b := append([]byte(nil), good[:32]...); b[31] = 0; return b }(),
	}
	for name, data := range cases {
		if _, _, _, err := DecodeZEP(data); err == nil {
			t.Errorf("%s: decoder accepted corrupt datagram", name)
		}
	}
}

func TestZEPEncodeRejectsInvalidRecords(t *testing.T) {
	if _, err := EncodeZEP(Record{Channel: 14}, 0, 0); err == nil {
		t.Error("encoded a record with no PSDU")
	}
	if _, err := EncodeZEP(Record{Channel: 300, PSDU: []byte{1}}, 0, 0); err == nil {
		t.Error("encoded an out-of-range channel")
	}
	if _, err := EncodeZEP(Record{Channel: 14, PSDU: bytes.Repeat([]byte{1}, 256)}, 0, 0); err == nil {
		t.Error("encoded an oversized payload")
	}
}

// TestEncodeZEPRecordUsesStreamSequence checks the record-driven encoder
// carries the producer's own sequence number into the datagram, so ZEP
// consumers stay aligned with the capture loop instead of being
// renumbered per subscriber.
func TestEncodeZEPRecordUsesStreamSequence(t *testing.T) {
	rec := Record{
		At:      time.Unix(10, 0),
		Channel: 21,
		LQI:     117,
		Seq:     42,
		PSDU:    []byte{0x01, 0x02, 0x03},
	}
	b, err := EncodeZEPRecord(rec, 0x5742)
	if err != nil {
		t.Fatal(err)
	}
	got, _, seq, err := DecodeZEP(b)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Errorf("ZEP sequence = %d, want the record's Seq 42", seq)
	}
	if got.LQI != 117 || got.Channel != 21 {
		t.Errorf("decoded LQI/channel = %d/%d, want 117/21", got.LQI, got.Channel)
	}
}
