package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"wazabee/internal/obs"
)

// LinkTypeIEEE802154WithFCS is the libpcap link type of raw IEEE
// 802.15.4 frames whose trailing two bytes are the FCS — exactly the
// PSDU the WazaBee receiver recovers. Wireshark dissects it natively.
const LinkTypeIEEE802154WithFCS = 195

const (
	pcapMagicMicros = 0xa1b2c3d4
	pcapMagicNanos  = 0xa1b23c4d
	pcapSnapLen     = 65535
	// pcapMaxPacket rejects absurd per-packet lengths before allocating,
	// so a corrupt or adversarial file cannot force a huge allocation.
	pcapMaxPacket = 0x40000
)

// PCAPWriter streams records into the classic libpcap file format
// (little-endian, microsecond timestamps, link type 195).
type PCAPWriter struct {
	w       io.Writer
	packets int
}

// NewPCAPWriter writes the 24-byte global header and returns a writer.
func NewPCAPWriter(w io.Writer) (*PCAPWriter, error) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagicMicros)
	le.PutUint16(hdr[4:], 2) // version 2.4
	le.PutUint16(hdr[6:], 4)
	// thiszone and sigfigs stay zero.
	le.PutUint32(hdr[16:], pcapSnapLen)
	le.PutUint32(hdr[20:], LinkTypeIEEE802154WithFCS)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("capture: pcap header: %w", err)
	}
	return &PCAPWriter{w: w}, nil
}

// WritePacket appends one captured frame with the given timestamp.
func (pw *PCAPWriter) WritePacket(at time.Time, data []byte) error {
	if len(data) > pcapSnapLen {
		return fmt.Errorf("capture: packet %d bytes exceeds snap length %d", len(data), pcapSnapLen)
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(at.Unix()))
	le.PutUint32(hdr[4:], uint32(at.Nanosecond()/1000))
	le.PutUint32(hdr[8:], uint32(len(data)))
	le.PutUint32(hdr[12:], uint32(len(data)))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := pw.w.Write(data); err != nil {
		return err
	}
	pw.packets++
	return nil
}

// WriteRecord appends a record's PSDU. Records without a PSDU (raw
// captures that never decoded) are skipped silently: a pcap of link
// type 195 can only carry frames.
func (pw *PCAPWriter) WriteRecord(rec Record) error {
	if len(rec.PSDU) == 0 {
		return nil
	}
	return pw.WritePacket(rec.At, rec.PSDU)
}

// Packets returns the number of packets written so far.
func (pw *PCAPWriter) Packets() int { return pw.packets }

// PCAPReader iterates over the packets of a classic pcap stream. It
// accepts both byte orders and both timestamp resolutions (microsecond
// magic 0xa1b2c3d4, nanosecond magic 0xa1b23c4d).
type PCAPReader struct {
	r        io.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
}

// NewPCAPReader validates the global header.
func NewPCAPReader(r io.Reader) (*PCAPReader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("capture: pcap header: %w", err)
	}
	pr := &PCAPReader{r: r}
	switch magic := binary.LittleEndian.Uint32(hdr[0:]); magic {
	case pcapMagicMicros:
		pr.order = binary.LittleEndian
	case pcapMagicNanos:
		pr.order, pr.nanos = binary.LittleEndian, true
	default:
		switch magic := binary.BigEndian.Uint32(hdr[0:]); magic {
		case pcapMagicMicros:
			pr.order = binary.BigEndian
		case pcapMagicNanos:
			pr.order, pr.nanos = binary.BigEndian, true
		default:
			return nil, fmt.Errorf("capture: not a pcap stream (magic %#08x)", magic)
		}
	}
	if major := pr.order.Uint16(hdr[4:]); major != 2 {
		return nil, fmt.Errorf("capture: unsupported pcap version %d", major)
	}
	pr.linkType = pr.order.Uint32(hdr[20:])
	return pr, nil
}

// LinkType returns the file's link type field.
func (pr *PCAPReader) LinkType() uint32 { return pr.linkType }

// Next returns the next packet, or io.EOF at a clean end of stream.
func (pr *PCAPReader) Next() (time.Time, []byte, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("capture: truncated packet header")
		}
		return time.Time{}, nil, err
	}
	sec := pr.order.Uint32(hdr[0:])
	sub := pr.order.Uint32(hdr[4:])
	incl := pr.order.Uint32(hdr[8:])
	if incl > pcapMaxPacket {
		return time.Time{}, nil, fmt.Errorf("capture: packet length %d exceeds sanity limit", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return time.Time{}, nil, fmt.Errorf("capture: truncated packet body: %w", err)
	}
	ns := int64(sub)
	if !pr.nanos {
		ns *= 1000
	}
	return time.Unix(int64(sec), ns), data, nil
}

// ReadAll drains the stream into records. The decoder tag is "pcap" and
// the channel is zero: link type 195 carries no radio header, so that
// metadata does not survive a pcap round trip (ZEP and the record wire
// format do preserve it).
func (pr *PCAPReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		at, data, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, Record{At: at, Decoder: "pcap", PSDU: data})
	}
}

// OpenPCAP reads a whole capture file into records.
func OpenPCAP(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	pr, err := NewPCAPReader(f)
	if err != nil {
		return nil, err
	}
	if pr.LinkType() != LinkTypeIEEE802154WithFCS {
		return nil, fmt.Errorf("capture: %s has link type %d, want %d (IEEE 802.15.4 with FCS)",
			path, pr.LinkType(), LinkTypeIEEE802154WithFCS)
	}
	return pr.ReadAll()
}

// WritePCAP saves records to a capture file.
func WritePCAP(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	pw, err := NewPCAPWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for _, rec := range records {
		if err := pw.WriteRecord(rec); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// RotatingPCAP writes records to a pcap file and rotates it once it
// exceeds a byte budget: the active file is always at Path; full files
// move aside to Path.1, Path.2, … in capture order. Safe for use from
// one writer goroutine at a time (wazabeed dedicates a hub subscription
// to it).
type RotatingPCAP struct {
	path     string
	maxBytes int64
	reg      *obs.Registry

	f       *os.File
	w       *PCAPWriter
	written int64
	seq     int
	packets int
}

// OpenRotatingPCAP starts a rotating capture at path. maxBytes <= 0
// disables rotation. reg receives the pcap byte/packet/rotation
// counters; nil falls back to the process default registry.
func OpenRotatingPCAP(path string, maxBytes int64, reg *obs.Registry) (*RotatingPCAP, error) {
	r := &RotatingPCAP{path: path, maxBytes: maxBytes, reg: obs.Or(reg)}
	if err := r.open(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *RotatingPCAP) open() error {
	f, err := os.Create(r.path)
	if err != nil {
		return err
	}
	w, err := NewPCAPWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	r.f, r.w, r.written = f, w, 24
	return nil
}

// WriteRecord appends one record, rotating first when the active file
// would exceed the byte budget.
func (r *RotatingPCAP) WriteRecord(rec Record) error {
	if len(rec.PSDU) == 0 {
		return nil
	}
	need := int64(16 + len(rec.PSDU))
	if r.maxBytes > 0 && r.written > 24 && r.written+need > r.maxBytes {
		if err := r.rotate(); err != nil {
			return err
		}
	}
	if err := r.w.WriteRecord(rec); err != nil {
		return err
	}
	r.written += need
	r.packets++
	r.reg.Counter("wazabee_capture_pcap_packets_total").Inc()
	r.reg.Counter("wazabee_capture_pcap_bytes_total").Add(uint64(need))
	return nil
}

func (r *RotatingPCAP) rotate() error {
	if err := r.f.Close(); err != nil {
		return err
	}
	r.seq++
	if err := os.Rename(r.path, fmt.Sprintf("%s.%d", r.path, r.seq)); err != nil {
		return err
	}
	r.reg.Counter("wazabee_capture_pcap_rotations_total").Inc()
	return r.open()
}

// Packets returns the total packets written across every rotation.
func (r *RotatingPCAP) Packets() int { return r.packets }

// Close flushes and closes the active file.
func (r *RotatingPCAP) Close() error { return r.f.Close() }
