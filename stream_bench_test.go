package wazabee

// Streaming-pipeline benchmarks: the "after" numbers the Makefile bench
// target pairs with BenchmarkWazaBeeRX/BenchmarkWazaBeeTX (the "before"
// whole-capture/allocating paths). Run with -benchmem: the headline is
// allocs/op, which must reach 0 in the RX steady state and stay flat in
// TX regardless of frame size.

import (
	"testing"

	"wazabee/internal/chip"
	"wazabee/internal/obs"
)

// BenchmarkRxStream measures the streaming reception primitive: the
// golden capture is fed in fixed-size chunks through a long-lived
// RxStream, flushing at each capture boundary. Compare against
// BenchmarkWazaBeeRX, which allocates a fresh buffer set per call.
func BenchmarkRxStream(b *testing.B) {
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := chip.CC1352R1().NewWazaBeeReceiver(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	ppdu := benchPPDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	sig, err := tx.Modulate(ppdu)
	if err != nil {
		b.Fatal(err)
	}
	padded, err := sig.Pad(200, 100)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	rx.Obs = reg

	const chunk = 512
	s := rx.Stream()
	defer s.Close()
	// One warm-up capture so every pooled slab reaches steady-state
	// capacity before measurement.
	for start := 0; start < len(padded); start += chunk {
		end := start + chunk
		if end > len(padded) {
			end = len(padded)
		}
		s.Push(padded[start:end])
	}
	if _, _, err := s.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for start := 0; start < len(padded); start += chunk {
			end := start + chunk
			if end > len(padded) {
				end = len(padded)
			}
			s.Push(padded[start:end])
		}
		if _, _, err := s.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportStageMetrics(b, reg)
}

// BenchmarkTxPooled measures the pooled transmission primitive: frame
// modulation with every intermediate (octets, chips, MSK bits) drawn
// from the shared buffer pool and the waveform returned to it after use.
// Compare against BenchmarkWazaBeeTX, which allocates each intermediate.
func BenchmarkTxPooled(b *testing.B) {
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	tx.Obs = reg
	ppdu := benchPPDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})

	// Warm the pool with one round trip.
	if sig, release, err := tx.ModulatePooled(ppdu); err != nil || len(sig) == 0 {
		b.Fatalf("warm-up modulation failed: %v", err)
	} else {
		release()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, release, err := tx.ModulatePooled(ppdu)
		if err != nil {
			b.Fatal(err)
		}
		if len(sig) == 0 {
			b.Fatal("empty waveform")
		}
		release()
	}
	b.StopTimer()
	reportStageMetrics(b, reg)
}
