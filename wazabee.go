// Package wazabee is a software reproduction of "WazaBee: attacking
// Zigbee networks by diverting Bluetooth Low Energy chips" (Cayre et al.,
// IEEE/IFIP DSN 2021).
//
// The library implements the full attack over a signal-level simulation
// of the 2.4 GHz band: a BLE GFSK modem (LE 1M / LE 2M / ESB 2M), an IEEE
// 802.15.4 O-QPSK modem with DSSS, the PN↔MSK correspondence at the heart
// of the attack (Algorithm 1 and Table I/II of the paper), per-chip radio
// front-end models, a radio medium with noise, CFO and WiFi interference,
// and the two end-to-end attack scenarios (smartphone advertising
// injection and the BLE-tracker Zigbee takeover).
//
// This file is the curated public surface; the implementation lives in
// the internal packages, one per subsystem (see DESIGN.md for the map).
package wazabee

import (
	"context"
	"time"

	"wazabee/internal/attack"
	"wazabee/internal/bitstream"
	"wazabee/internal/campaign"
	"wazabee/internal/capture"
	"wazabee/internal/chip"
	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/dsp/stream"
	"wazabee/internal/experiment"
	"wazabee/internal/experiment/runner"
	"wazabee/internal/ids"
	"wazabee/internal/ieee802154"
	"wazabee/internal/modsim"
	"wazabee/internal/obs"
	"wazabee/internal/obs/link"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
	"wazabee/internal/zigbee/sim"
)

// Core attack types.
type (
	// Transmitter is the WazaBee transmission primitive: a diverted BLE
	// GFSK modulator emitting IEEE 802.15.4 frames.
	Transmitter = core.Transmitter
	// Receiver is the WazaBee reception primitive: a diverted BLE
	// receiver despreading 802.15.4 frames by Hamming distance.
	Receiver = core.Receiver
	// RxStream is the streaming form of the receiver: the same pipeline
	// fed IQ chunks incrementally via Push, concluded per capture with
	// Flush. Build one with Receiver.Stream().
	RxStream = core.RxStream
	// StreamPool is the sync.Pool-backed buffer pool behind the
	// streaming pipeline; StreamPoolStats snapshots its reuse counters.
	StreamPool = stream.BufferPool
	// StreamPoolStats is a point-in-time hit/miss snapshot of a
	// StreamPool.
	StreamPoolStats = stream.PoolStats
	// Chip models a radio front end (nRF52832, CC1352-R1, nRF51822,
	// RZUSBStick) with its capabilities and analog quality.
	Chip = chip.Model
	// ChannelMapping is one row of Table II (Zigbee/BLE common
	// channels).
	ChannelMapping = core.ChannelMapping
	// CorrespondenceEntry is one row of the PN/MSK table the attack is
	// built on.
	CorrespondenceEntry = core.CorrespondenceEntry
	// Bits is an on-air bit (or chip) sequence.
	Bits = bitstream.Bits
	// IQ is a complex-baseband sample buffer.
	IQ = dsp.IQ
	// PPDU is an IEEE 802.15.4 PHY frame.
	PPDU = ieee802154.PPDU
	// MACFrame is an IEEE 802.15.4 MAC frame.
	MACFrame = ieee802154.MACFrame
)

// Chip catalogue of the paper's experiments.
var (
	NRF52832   = chip.NRF52832
	CC1352R1   = chip.CC1352R1
	NRF51822   = chip.NRF51822
	RZUSBStick = chip.RZUSBStick
)

// NewTransmitter builds the WazaBee transmission primitive on a chip's
// radio at the given baseband oversampling factor (samples per 2 Mbit/s
// symbol).
func NewTransmitter(model Chip, samplesPerSymbol int) (*Transmitter, error) {
	return model.NewWazaBeeTransmitter(samplesPerSymbol)
}

// NewReceiver builds the WazaBee reception primitive on a chip's radio.
func NewReceiver(model Chip, samplesPerSymbol int) (*Receiver, error) {
	return model.NewWazaBeeReceiver(samplesPerSymbol)
}

// ConvertPNSequence is Algorithm 1 of the paper: it re-encodes a 32-chip
// O-QPSK PN sequence as the 31-bit MSK sequence of its phase rotations.
func ConvertPNSequence(pn Bits) (Bits, error) {
	return core.ConvertPNSequence(pn)
}

// ConvertChipStream generalises Algorithm 1 to whole frames.
func ConvertChipStream(chips Bits) (Bits, error) {
	return core.ConvertChipStream(chips)
}

// CorrespondenceTable returns the 16-row PN/MSK table.
func CorrespondenceTable() ([16]CorrespondenceEntry, error) {
	return core.CorrespondenceTable()
}

// CommonChannels returns Table II: the Zigbee channels sharing a centre
// frequency with a BLE channel.
func CommonChannels() []ChannelMapping {
	return core.CommonChannels()
}

// AccessAddress returns the 32-bit value a diverted BLE chip loads as its
// Access Address to detect 802.15.4 preambles.
func AccessAddress() uint32 {
	return core.AccessAddress()
}

// NewFrame wraps a MAC-level PSDU (including FCS) in a PPDU.
func NewFrame(psdu []byte) (*PPDU, error) {
	return ieee802154.NewPPDU(psdu)
}

// NewDataFrame builds an intra-PAN 802.15.4 data frame; Seal encodes it
// into a PSDU with a valid FCS.
func NewDataFrame(seq uint8, pan, dest, src uint16, payload []byte, ackRequest bool) *MACFrame {
	return ieee802154.NewDataFrame(seq, pan, dest, src, payload, ackRequest)
}

// Experiment harness (Table III).
type (
	// ExperimentConfig parameterises a Table III run.
	ExperimentConfig = experiment.Config
	// ExperimentResult is one measured column of Table III.
	ExperimentResult = experiment.Result
	// Side selects the assessed primitive (reception or transmission).
	Side = experiment.Side
)

// Sides of the Table III experiment.
const (
	Reception    = experiment.Reception
	Transmission = experiment.Transmission
)

// Fidelity selects how much physics a frame delivery simulates: IQ runs
// the full DSP chain (ground truth), Symbol draws calibrated per-symbol
// chip errors through the real despreader, Frame collapses delivery to
// one calibrated erasure draw. See DESIGN.md §14 for the trade-offs.
type Fidelity = radio.Fidelity

// Fidelity tiers, cheapest last.
const (
	FidelityIQ     = radio.FidelityIQ
	FidelitySymbol = radio.FidelitySymbol
	FidelityFrame  = radio.FidelityFrame
)

// ParseFidelity parses a -fidelity flag value ("iq", "symbol", "frame").
func ParseFidelity(s string) (Fidelity, error) {
	return radio.ParseFidelity(s)
}

// DefaultExperimentConfig reproduces the paper's benchmark setup.
func DefaultExperimentConfig() ExperimentConfig {
	return experiment.DefaultConfig()
}

// RunExperiment executes the Table III experiment for one chip and side.
func RunExperiment(cfg ExperimentConfig, model Chip, side Side) (*ExperimentResult, error) {
	return experiment.Run(cfg, model, side)
}

// RunExperimentContext is RunExperiment with cancellation: the run
// executes on the sharded Monte-Carlo engine, honors ctx between
// trials, and — with cfg.Checkpoint set — persists completed shards so
// an identical invocation resumes bit-identically.
func RunExperimentContext(ctx context.Context, cfg ExperimentConfig, model Chip, side Side) (*ExperimentResult, error) {
	return experiment.RunContext(ctx, cfg, model, side)
}

// FormatExperiment renders a result next to the published Table III.
func FormatExperiment(r *ExperimentResult) string {
	return experiment.FormatComparison(r)
}

// WilsonInterval returns the 95% Wilson score interval for a rate
// estimated from count successes in trials attempts — the interval
// every experiment result in this package reports.
func WilsonInterval(count, trials int) (lo, hi float64) {
	return runner.Wilson(count, trials)
}

// Attack scenarios.
type (
	// Tracker is the scenario B attacker (four-step Zigbee takeover
	// from a compromised BLE wearable).
	Tracker = attack.Tracker
	// Smartphone is the scenario A attacker (frame injection through
	// the extended advertising API of an unrooted phone).
	Smartphone = attack.Smartphone
	// VictimNetwork is the simulated XBee domotic network of the
	// paper's experimental setup.
	VictimNetwork = zigbee.Simulation
)

// NewVictimNetwork builds the default victim network (PAN 0x1234, sensor
// 0x0063 reporting to coordinator 0x0042 on channel 14) over a seeded
// radio medium.
func NewVictimNetwork(seed int64, samplesPerChip int, snrDB float64) (*VictimNetwork, error) {
	return zigbee.NewSimulation(seed, samplesPerChip, snrDB)
}

// LiveNetwork runs a victim network on a real-time ticker, streaming
// captures to a channel (see zigbee.StartLive).
type LiveNetwork = zigbee.LiveNetwork

// LiveCapture is one annotated waveform from a LiveNetwork's capture
// stream (timestamp, channel, sequence number).
type LiveCapture = zigbee.Capture

// StartLiveNetwork spawns the network's reporting loop; stop it with
// Shutdown.
func StartLiveNetwork(net *VictimNetwork, interval time.Duration, captureChannel int) (*LiveNetwork, error) {
	return zigbee.StartLive(net, interval, captureChannel)
}

// Virtual-time mesh simulation (DESIGN.md §12): thousand-node Zigbee
// meshes with full association, beaconing and CSMA-CA running at CPU
// speed on a discrete-event scheduler, deterministic under one seed.
type (
	// MeshNetwork is the discrete-event mesh simulator.
	MeshNetwork = sim.Network
	// MeshTopology declares the node roster (roles, parents, channels,
	// PANs) a MeshNetwork is built from.
	MeshTopology = sim.Topology
	// MeshConfig carries the run seed, traffic cadences and link model.
	MeshConfig = sim.Config

	// MeshNodeStats is one node's observatory snapshot: MAC counters,
	// join latency, radio-state durations and integrated energy.
	MeshNodeStats = sim.NodeStats
	// MeshLinkStats is one directed (tx → rx) link's delivery record.
	MeshLinkStats = sim.LinkStats
	// MeshSnapshot is the full observatory state (/debug/sim's payload).
	MeshSnapshot = sim.Snapshot
	// MeshEnergyProfile is a per-chip radio current-draw table for the
	// energy accountant.
	MeshEnergyProfile = sim.EnergyProfile
)

// MeshEnergyProfileByName resolves an energy-accountant chip name
// ("cc2652", "nrf52840") to its current-draw profile.
func MeshEnergyProfileByName(name string) (MeshEnergyProfile, error) {
	return sim.ProfileByName(name)
}

// NewMeshNetwork builds a simulator over a topology — see sim.Star,
// sim.Tree and sim.Random for generators, and cmd/wazabeesim for the
// CLI front end.
func NewMeshNetwork(topo MeshTopology, cfg MeshConfig) (*MeshNetwork, error) {
	return sim.New(topo, cfg)
}

// NewTracker wires a scenario B attacker to its radio environment.
func NewTracker(tx *Transmitter, rx *Receiver, air attack.Air) (*Tracker, error) {
	return attack.NewTracker(tx, rx, air)
}

// NewSmartphone builds the scenario A attacker.
func NewSmartphone(samplesPerSymbol int) (*Smartphone, error) {
	return attack.NewSmartphone(samplesPerSymbol)
}

// Observability: the telemetry layer every instrumented component
// (Transmitter, Receiver, the radio medium, the 802.15.4 decoder, the
// IDS and the experiment harnesses) reports into.
type (
	// MetricsRegistry holds counters, gauges and histograms and encodes
	// them as Prometheus text or a JSON snapshot.
	MetricsRegistry = obs.Registry
	// MetricsCounter is a concurrency-safe monotonic counter.
	MetricsCounter = obs.Counter
	// MetricsGauge is a concurrency-safe instantaneous value.
	MetricsGauge = obs.Gauge
	// MetricsHistogram is a fixed-bucket histogram with quantile
	// estimation.
	MetricsHistogram = obs.Histogram
	// Trace collects nested, timed spans of one pipeline traversal.
	Trace = obs.Trace
	// Span is one timed pipeline stage inside a Trace.
	Span = obs.Span
)

// DefaultRegistry is the process-wide metrics registry; instrumented
// components report here unless given a private registry via their Obs
// field (or an experiment Config's Obs field).
var DefaultRegistry = obs.Default()

// Metrics returns the process-wide default metrics registry — print
// Metrics().PrometheusText() to see everything the pipeline observed.
func Metrics() *MetricsRegistry {
	return obs.Default()
}

// NewMetricsRegistry builds a private registry, for callers who want to
// isolate one run's telemetry from the process totals.
func NewMetricsRegistry() *MetricsRegistry {
	return obs.NewRegistry()
}

// NewTrace starts a span trace; attach it to a Transmitter, Receiver or
// medium via their Trace field and render it with Tree() or JSON().
func NewTrace(name string) *Trace {
	return obs.NewTrace(name)
}

// Link diagnostics: the per-frame signal-quality evidence (RSSI, SNR,
// CFO, sync correlation, chip errors, 802.15.4 LQI) the demodulators
// attach to every receive attempt (see DESIGN.md §7).
type (
	// LinkStats is one frame's link-quality record; Receiver.ReceiveStats
	// returns it alongside the demodulation.
	LinkStats = link.Stats
	// LinkAggregator folds LinkStats into per-channel summaries — the
	// payload of wazabeed's /debug/link endpoint.
	LinkAggregator = link.Aggregator
	// LinkChannelSummary is one channel's aggregate link quality.
	LinkChannelSummary = link.ChannelSummary
	// Logger is the leveled structured event logger (JSON lines plus a
	// bounded ring buffer — wazabeed's /logz endpoint).
	Logger = obs.Logger
	// LogEvent is one structured log record.
	LogEvent = obs.Event
)

// NewLinkAggregator builds a per-channel link-quality aggregator
// reporting into the process default metrics registry.
func NewLinkAggregator() *LinkAggregator {
	return link.NewAggregator(nil)
}

// DefaultLogger returns the process-wide structured logger; direct its
// output with SetSink and tune severities with SetLevel /
// SetComponentLevel.
func DefaultLogger() *Logger {
	return obs.DefaultLogger()
}

// Health, latency SLOs and the flight recorder (see DESIGN.md §11):
// the runtime-observability layer wazabeed serves on /healthz, /readyz
// and /debug/flight.
type (
	// Health is a registry of named component probes; its Healthz and
	// Readyz handlers are the daemon's liveness/readiness endpoints.
	Health = obs.Health
	// HealthComponent is one registered component's push-state handle
	// (SetOK / SetDegraded / SetDown).
	HealthComponent = obs.HealthComponent
	// HealthSnapshot is one full evaluation of a Health registry.
	HealthSnapshot = obs.HealthSnapshot
	// FlightRecorder is a bounded lock-free ring of recent structured
	// pipeline events — frames, drops, errors — dumpable via HTTP or
	// SIGQUIT without stopping the process.
	FlightRecorder = obs.Flight
	// FlightEvent is one recorded flight event.
	FlightEvent = obs.FlightEvent
)

// NewHealth builds a health registry reporting into the process default
// metrics registry.
func NewHealth() *Health {
	return obs.NewHealth(nil)
}

// DefaultFlightRecorder returns the process-wide flight recorder;
// instrumented components record here unless given a private recorder.
func DefaultFlightRecorder() *FlightRecorder {
	return obs.DefaultFlight()
}

// ComputeLQI maps a chip error rate and an SNR estimate onto the
// 802.15.4 link-quality-indication scale (0–255).
func ComputeLQI(chipErrorRate, snrDB float64, snrValid bool) uint8 {
	return link.ComputeLQI(chipErrorRate, snrDB, snrValid)
}

// Capture subsystem: persistence, fan-out streaming and deterministic
// replay of sniffed 802.15.4 traffic (see internal/capture and
// DESIGN.md §8).
type (
	// CaptureRecord is one timestamped frame record (channel, RSSI/SNR,
	// decoder kind, PSDU) — the unit every capture sink consumes.
	CaptureRecord = capture.Record
	// CaptureHub fans one producer's records out to N subscribers with
	// bounded queues and a drop-oldest backpressure policy.
	CaptureHub = capture.Hub
	// CaptureSubscription is one consumer's bounded view of a hub
	// stream.
	CaptureSubscription = capture.Subscription
	// ReplayConfig parameterises deterministic playback of recorded
	// captures through the simulated radio medium.
	ReplayConfig = capture.ReplayConfig
)

// OpenPCAP reads a Wireshark-compatible capture file (link type 195,
// IEEE 802.15.4 with FCS) into records.
func OpenPCAP(path string) ([]CaptureRecord, error) {
	return capture.OpenPCAP(path)
}

// WritePCAP saves records to a pcap file that opens directly in
// Wireshark.
func WritePCAP(path string, records []CaptureRecord) error {
	return capture.WritePCAP(path, records)
}

// NewHub builds a capture fan-out hub reporting into the process
// default metrics registry.
func NewHub() *CaptureHub {
	return capture.NewHub(nil)
}

// Replay plays recorded captures back through a seeded radio medium,
// handing each reconstructed waveform to sink — the injected-seed
// determinism the rest of the repo guarantees applies, so a saved
// capture is a reproducible regression input.
func Replay(records []CaptureRecord, cfg ReplayConfig, sink func(CaptureRecord, dsp.IQ) error) error {
	return capture.Replay(records, cfg, sink)
}

// ReplayThroughReceiver replays records into a WazaBee receiver and
// returns the per-record demodulations (nil entries are misses).
func ReplayThroughReceiver(records []CaptureRecord, cfg ReplayConfig, rx *Receiver) ([]*ieee802154.Demodulated, error) {
	return capture.ReplayThroughReceiver(records, cfg, rx)
}

// Counter-measures and prospective analysis (sections VII and VIII).
type (
	// IDSMonitor is the section VII radio-monitoring counter-measure:
	// it inspects captures for cross-technology attack signatures.
	IDSMonitor = ids.Monitor
	// IDSFrameMonitor is the monitor's frame-fidelity tier: it judges
	// pre-extracted per-frame features instead of IQ captures, so the
	// mesh simulator's campaigns can run the same detectors.
	IDSFrameMonitor = ids.FrameMonitor
	// IDSVerdict is the result of one inspection.
	IDSVerdict = ids.Verdict
	// PivotScore is one modulation-pivotability survey row.
	PivotScore = modsim.PairScore
)

// Campaign engine (DESIGN.md §15): the scenario catalogue swept against
// the IDS thresholds into an attack-vs-detection ROC matrix.
type (
	// CampaignScenario is one catalogue entry — a named, repeatable
	// attack (or the benign baseline) on a simulated mesh.
	CampaignScenario = campaign.Scenario
	// CampaignOutcome is one scenario run's score card.
	CampaignOutcome = campaign.Outcome
	// CampaignOptions parameterises one scenario instance.
	CampaignOptions = campaign.Options
	// CampaignMatrixSpec parameterises a full campaign sweep.
	CampaignMatrixSpec = campaign.MatrixSpec
	// CampaignMatrix is a completed sweep: ROC cells plus impact rows.
	CampaignMatrix = campaign.Matrix
)

// CampaignCatalogue lists the scenario catalogue in stable order.
func CampaignCatalogue() []CampaignScenario {
	return campaign.Catalogue()
}

// CampaignScenarioByName resolves one catalogue scenario.
func CampaignScenarioByName(name string) (CampaignScenario, error) {
	return campaign.ByName(name)
}

// RunCampaignMatrix executes a campaign sweep — every (scenario,
// threshold) cell as a deterministic Monte-Carlo point, bit-identical at
// any worker count. cmd/wazabeecampaign is the CLI front end.
func RunCampaignMatrix(ctx context.Context, spec CampaignMatrixSpec) (*CampaignMatrix, error) {
	return campaign.RunMatrix(ctx, spec)
}

// NewIDSMonitor builds the radio watchdog at the given oversampling
// factor.
func NewIDSMonitor(samplesPerChip int) (*IDSMonitor, error) {
	return ids.NewMonitor(samplesPerChip)
}

// SurveyPivotability scores a catalogue of GFSK-family radios against
// the 802.15.4 O-QPSK target — the similarity metric the paper's future
// work calls for.
func SurveyPivotability(samplesPerSymbol int, seed int64) ([]PivotScore, error) {
	return modsim.SurveyAgainstOQPSK(samplesPerSymbol, seed)
}
