package wazabee

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) plus ablation
// benchmarks for the design choices the attack depends on. Semantic
// results (valid rates, chip error rates) are attached to the benchmark
// output via b.ReportMetric, so `go test -bench` doubles as the
// reproduction report.

import (
	"fmt"
	"math/rand"
	"testing"

	"wazabee/internal/attack"
	"wazabee/internal/bitstream"
	"wazabee/internal/ble"
	"wazabee/internal/chip"
	"wazabee/internal/core"
	"wazabee/internal/dsp"
	"wazabee/internal/experiment"
	"wazabee/internal/ids"
	"wazabee/internal/ieee802154"
	"wazabee/internal/modsim"
	"wazabee/internal/obs"
	"wazabee/internal/zigbee"
)

const benchSPS = 8

func benchPSDU(b *testing.B, payload []byte) []byte {
	b.Helper()
	fcs := bitstream.FCS16Bytes(bitstream.FCS16(payload))
	return append(append([]byte{}, payload...), fcs[0], fcs[1])
}

func benchPPDU(b *testing.B, payload []byte) *ieee802154.PPDU {
	b.Helper()
	ppdu, err := ieee802154.NewPPDU(benchPSDU(b, payload))
	if err != nil {
		b.Fatal(err)
	}
	return ppdu
}

// BenchmarkTableI regenerates Table I: the 16 PN spreading sequences.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seqs := ieee802154.PNSequences()
		if len(seqs[0]) != 32 {
			b.Fatal("bad PN table")
		}
	}
}

// BenchmarkAlgorithm1 regenerates the PN→MSK correspondence (Algorithm 1
// applied to all 16 sequences).
func BenchmarkAlgorithm1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.CorrespondenceTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates Table II by intersecting the Zigbee and
// BLE channel maps.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(core.CommonChannels()) != 8 {
			b.Fatal("Table II derivation broken")
		}
	}
}

// benchTable3 runs a reduced Table III sweep per iteration and reports
// the measured valid rate next to the paper's average.
func benchTable3(b *testing.B, model chip.Model, side experiment.Side) {
	cfg := experiment.DefaultConfig()
	cfg.FramesPerChannel = 2
	var rate float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res, err := experiment.Run(cfg, model, side)
		if err != nil {
			b.Fatal(err)
		}
		rate += res.ValidRate()
	}
	b.ReportMetric(100*rate/float64(b.N), "valid%")
	if paper, ok := experiment.PaperAverageValid(model.Name, side); ok {
		b.ReportMetric(paper, "paper-valid%")
	}
}

// BenchmarkTableIIIReception regenerates the reception half of Table III.
func BenchmarkTableIIIReception(b *testing.B) {
	for _, m := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		b.Run(m.Name, func(b *testing.B) {
			benchTable3(b, m, experiment.Reception)
		})
	}
}

// BenchmarkTableIIITransmission regenerates the transmission half of
// Table III.
func BenchmarkTableIIITransmission(b *testing.B) {
	for _, m := range []chip.Model{chip.NRF52832(), chip.CC1352R1()} {
		b.Run(m.Name, func(b *testing.B) {
			benchTable3(b, m, experiment.Transmission)
		})
	}
}

// BenchmarkFigure1Waveform regenerates the Figure 1 material: a 2-FSK
// waveform whose I/Q rotation encodes the bits.
func BenchmarkFigure1Waveform(b *testing.B) {
	phy, err := ble.NewPHYWithShaping(ble.LE2M, benchSPS, 0.5, 0)
	if err != nil {
		b.Fatal(err)
	}
	bits := bitstream.BytesToBits([]byte{0x55, 0x55, 0x55, 0x55})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err := phy.ModulateBits(bits)
		if err != nil {
			b.Fatal(err)
		}
		if len(dsp.Discriminate(sig)) == 0 {
			b.Fatal("empty discriminator output")
		}
	}
}

// BenchmarkFigure2Waveform regenerates Figure 2: the temporal
// decomposition of an O-QPSK half-sine modulated signal.
func BenchmarkFigure2Waveform(b *testing.B) {
	phy, err := ieee802154.NewPHY(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	chips := ieee802154.Spread([]byte{0xa5, 0x3c})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phy.ModulateChips(chips); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Waveform regenerates Figure 3: the constellation/phase
// trajectory of the O-QPSK signal.
func BenchmarkFigure3Waveform(b *testing.B) {
	phy, err := ieee802154.NewPHY(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	chips := ieee802154.Spread([]byte{0x0f, 0xf0})
	sig, err := phy.ModulateChips(chips)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(dsp.UnwrapPhase(sig)) != len(sig) {
			b.Fatal("phase trajectory length mismatch")
		}
	}
}

// BenchmarkScenarioA regenerates the Figure 4 experiment: one forged
// extended-advertising injection into the victim network (repeating
// events until CSA#2 lands on the target channel).
func BenchmarkScenarioA(b *testing.B) {
	frame := ieee802154.NewDataFrame(0x2a, zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(0x1337), false)
	psdu, err := frame.Encode()
	if err != nil {
		b.Fatal(err)
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		b.Fatal(err)
	}
	injected := 0
	for i := 0; i < b.N; i++ {
		sim, err := zigbee.NewSimulation(int64(i+1), benchSPS, 25)
		if err != nil {
			b.Fatal(err)
		}
		phone, err := attack.NewSmartphone(benchSPS)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := phone.InjectFrame(sim, zigbee.DefaultChannel, ppdu, 500); err != nil {
			b.Fatal(err)
		}
		if last, ok := sim.Coordinator.LastReading(); ok && last.Value == 0x1337 {
			injected++
		}
	}
	b.ReportMetric(100*float64(injected)/float64(b.N), "accepted%")
}

// BenchmarkScenarioB regenerates the Figure 5 experiment: the four-step
// tracker attack (scan, eavesdrop, AT injection, spoofing).
func BenchmarkScenarioB(b *testing.B) {
	model := chip.NRF51822()
	succeeded := 0
	for i := 0; i < b.N; i++ {
		sim, err := zigbee.NewSimulation(int64(i+1), benchSPS, 25)
		if err != nil {
			b.Fatal(err)
		}
		tx, err := model.NewWazaBeeTransmitter(benchSPS)
		if err != nil {
			b.Fatal(err)
		}
		rx, err := model.NewWazaBeeReceiver(benchSPS)
		if err != nil {
			b.Fatal(err)
		}
		tracker, err := attack.NewTracker(tx, rx, sim)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tracker.Run(ieee802154.Channels(), 25, []uint16{9999}); err == nil {
			succeeded++
		}
	}
	b.ReportMetric(100*float64(succeeded)/float64(b.N), "success%")
}

// reportStageMetrics attaches the per-stage mean timings recorded in reg
// to the benchmark output, so `go test -bench` shows where inside the
// primitive the time goes.
func reportStageMetrics(b *testing.B, reg *obs.Registry) {
	b.Helper()
	for _, s := range reg.Snapshot() {
		if s.Name != obs.StageSecondsMetric || s.Count == 0 {
			continue
		}
		b.ReportMetric(s.Mean*1e9, s.Labels["stage"]+"-ns/op")
	}
}

// BenchmarkWazaBeeTX measures the transmission primitive's throughput
// (frame modulation cost).
func BenchmarkWazaBeeTX(b *testing.B) {
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	tx.Obs = reg
	ppdu := benchPPDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Modulate(ppdu); err != nil {
			b.Fatal(err)
		}
	}
	reportStageMetrics(b, reg)
}

// BenchmarkWazaBeeRX measures the reception primitive's demodulation and
// despreading cost.
func BenchmarkWazaBeeRX(b *testing.B) {
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := chip.CC1352R1().NewWazaBeeReceiver(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	ppdu := benchPPDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	sig, err := tx.Modulate(ppdu)
	if err != nil {
		b.Fatal(err)
	}
	padded, err := sig.Pad(200, 100)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	rx.Obs = reg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rx.Receive(padded); err != nil {
			b.Fatal(err)
		}
	}
	reportStageMetrics(b, reg)
}

// BenchmarkSNRSweep measures the extension experiment: the sensitivity
// knee of the reception primitive (PER at a mid-waterfall SNR).
func BenchmarkSNRSweep(b *testing.B) {
	cfg := experiment.SweepConfig{
		SNRs:           []float64{6},
		FramesPerPoint: 10,
		SamplesPerChip: benchSPS,
		Channel:        14,
	}
	var per float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		points, err := experiment.RunSweep(cfg, chip.CC1352R1(), experiment.Reception)
		if err != nil {
			b.Fatal(err)
		}
		per += points[0].PER
	}
	b.ReportMetric(100*per/float64(b.N), "per-at-6dB%")
}

// BenchmarkRunnerSweep measures the sharded Monte-Carlo runner on a real
// sweep workload at different worker-pool sizes. The results are
// bit-identical across sub-benchmarks (that is the runner's contract);
// only the wall clock changes, so serial vs workers-8 reads directly as
// the engine's parallel speedup on multicore hardware.
func BenchmarkRunnerSweep(b *testing.B) {
	run := func(b *testing.B, workers int) {
		cfg := experiment.SweepConfig{
			SNRs:           []float64{4, 6, 8},
			FramesPerPoint: 16,
			SamplesPerChip: benchSPS,
			Workers:        workers,
			Channel:        14,
			Obs:            obs.NewRegistry(),
		}
		trials := 0
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			points, err := experiment.RunSweep(cfg, chip.CC1352R1(), experiment.Reception)
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range points {
				trials += p.Frames
			}
		}
		b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("workers-4", func(b *testing.B) { run(b, 4) })
	b.Run("workers-8", func(b *testing.B) { run(b, 8) })
}

// BenchmarkIDSDetection measures the section VII counter-measure: the
// detection rate on WazaBee traffic and the false-positive rate on
// legitimate traffic at 18 dB SNR.
func BenchmarkIDSDetection(b *testing.B) {
	monitor, err := ids.NewMonitor(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	zphy, err := ieee802154.NewPHY(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	tx, err := chip.NRF52832().NewWazaBeeTransmitter(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	ppdu := benchPPDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	legit, err := zphy.Modulate(ppdu)
	if err != nil {
		b.Fatal(err)
	}
	waza, err := tx.Modulate(ppdu)
	if err != nil {
		b.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(5))
	detected, falseAlarms := 0, 0
	for i := 0; i < b.N; i++ {
		w := waza.Clone()
		padded, err := w.Pad(150, 100)
		if err != nil {
			b.Fatal(err)
		}
		if err := dsp.AddAWGN(padded, 18, rnd); err != nil {
			b.Fatal(err)
		}
		v, err := monitor.Inspect(padded)
		if err != nil {
			b.Fatal(err)
		}
		if v.Suspicious() {
			detected++
		}

		l := legit.Clone()
		paddedL, err := l.Pad(150, 100)
		if err != nil {
			b.Fatal(err)
		}
		if err := dsp.AddAWGN(paddedL, 18, rnd); err != nil {
			b.Fatal(err)
		}
		v, err = monitor.Inspect(paddedL)
		if err != nil {
			b.Fatal(err)
		}
		if v.Suspicious() {
			falseAlarms++
		}
	}
	b.ReportMetric(100*float64(detected)/float64(b.N), "detect%")
	b.ReportMetric(100*float64(falseAlarms)/float64(b.N), "false-alarm%")
}

// BenchmarkPivotability runs the modulation-similarity survey of the
// paper's future work and reports the two headline scores.
func BenchmarkPivotability(b *testing.B) {
	var ble2m, le1m float64
	for i := 0; i < b.N; i++ {
		scores, err := modsim.SurveyAgainstOQPSK(benchSPS, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range scores {
			switch s.Emulator {
			case "BLE LE 2M GFSK (m=0.5, BT=0.5)":
				ble2m += s.Score
			case "BLE LE 1M GFSK (rate mismatch)":
				le1m += s.Score
			}
		}
	}
	b.ReportMetric(ble2m/float64(b.N), "le2m-score")
	b.ReportMetric(le1m/float64(b.N), "le1m-score")
}

// chipErrorRate transmits a frame through a GFSK modem with the given
// shaping, optionally through AWGN, and measures the fraction of chips
// the 802.15.4 MSK-view slicer gets wrong — quantifying the
// Gaussian-approximation cost the paper neglects analytically. The
// slicer compensates the pulse-shaping group delay, as a synchronised
// receiver would.
func chipErrorRate(b *testing.B, modIndex, bt float64, snrDB float64, rnd *rand.Rand) float64 {
	b.Helper()
	phy, err := ble.NewPHYWithShaping(ble.LE2M, benchSPS, modIndex, bt)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPSDU(b, []byte{0x41, 0x88, 0x01, 0x34, 0x12, 0x42, 0x00, 0x63, 0x00, 0x2a})
	ppdu, err := ieee802154.NewPPDU(payload)
	if err != nil {
		b.Fatal(err)
	}
	chips := ieee802154.Spread(ppdu.Bytes())
	msk, err := core.ConvertChipStream(chips)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := phy.ModulateBits(msk)
	if err != nil {
		b.Fatal(err)
	}
	if snrDB > 0 {
		if err := dsp.AddAWGN(sig, snrDB, rnd); err != nil {
			b.Fatal(err)
		}
	}
	pulse, err := dsp.GaussianPulse(bt, benchSPS, 2)
	if err != nil {
		b.Fatal(err)
	}
	groupDelay := (len(pulse) - benchSPS) / 2
	incs := dsp.Discriminate(sig)
	sums := dsp.IntegrateSymbols(incs, groupDelay, benchSPS)
	got := dsp.SliceBits(sums)
	n := len(msk)
	if len(got) < n {
		n = len(got)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if got[i] != msk[i] {
			errs++
		}
	}
	return float64(errs) / float64(n)
}

// BenchmarkAblationGaussianFilter quantifies the paper's central
// approximation: the chip error rate of a Gaussian-filtered (BT 0.5) GFSK
// transmitter versus ideal MSK, as seen by an 802.15.4 chip slicer.
func BenchmarkAblationGaussianFilter(b *testing.B) {
	for _, tc := range []struct {
		name string
		bt   float64
	}{
		{name: "MSK-ideal", bt: 0},
		{name: "GFSK-BT0.5", bt: 0.5},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rnd := rand.New(rand.NewSource(1))
			var rate float64
			for i := 0; i < b.N; i++ {
				rate += chipErrorRate(b, 0.5, tc.bt, 8, rnd)
			}
			b.ReportMetric(100*rate/float64(b.N), "chip-err%")
		})
	}
}

// BenchmarkAblationModIndex sweeps the BLE modulation-index tolerance
// band (0.45..0.55): the attack must survive the whole band.
func BenchmarkAblationModIndex(b *testing.B) {
	for _, m := range []float64{0.45, 0.50, 0.55} {
		b.Run(fmt.Sprintf("m=%.2f", m), func(b *testing.B) {
			rnd := rand.New(rand.NewSource(2))
			var rate float64
			for i := 0; i < b.N; i++ {
				rate += chipErrorRate(b, m, 0.5, 8, rnd)
			}
			b.ReportMetric(100*rate/float64(b.N), "chip-err%")
		})
	}
}

// BenchmarkAblationLE1M demonstrates the data-rate requirement of section
// IV-D: at 1 Mbit/s the MSK symbol lasts two chip periods and the chip
// stream is unrecoverable.
func BenchmarkAblationLE1M(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		// LE 1M at the same samples-per-symbol means each symbol
		// spans two chip periods at the receiver's 2 Mchip/s grid;
		// emulate by demodulating the 1M waveform at twice the
		// symbol rate.
		phy, err := ble.NewPHYWithShaping(ble.LE2M, 2*benchSPS, 0.5, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		payload := benchPSDU(b, []byte{1, 2, 3, 4})
		ppdu, err := ieee802154.NewPPDU(payload)
		if err != nil {
			b.Fatal(err)
		}
		msk, err := core.ConvertChipStream(ieee802154.Spread(ppdu.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		sig, err := phy.ModulateBits(msk)
		if err != nil {
			b.Fatal(err)
		}
		incs := dsp.Discriminate(sig)
		sums := dsp.IntegrateSymbols(incs, 0, benchSPS) // receiver still at 2 Mchip/s
		got := dsp.SliceBits(sums)
		n := len(msk)
		if len(got) < n {
			n = len(got)
		}
		errs := 0
		for j := 0; j < n; j++ {
			if got[j] != msk[j] {
				errs++
			}
		}
		rate = float64(errs) / float64(n)
	}
	b.ReportMetric(100*rate, "chip-err%")
}

// BenchmarkAblationHammingDecode compares the paper's nearest-sequence
// decoder against exact matching under noise: the frame success rate with
// each decision rule.
func BenchmarkAblationHammingDecode(b *testing.B) {
	phy, err := ieee802154.NewPHY(benchSPS)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchPSDU(b, []byte{0xca, 0xfe, 0x01, 0x02})
	ppdu, err := ieee802154.NewPPDU(payload)
	if err != nil {
		b.Fatal(err)
	}
	chips := ieee802154.Spread(ppdu.Bytes())
	msk, err := core.ConvertChipStream(chips)
	if err != nil {
		b.Fatal(err)
	}
	alphabet := ieee802154.TransitionAlphabet()

	decode := func(bits bitstream.Bits, exact bool) bool {
		// Walk symbol blocks (31 transitions + 1 boundary bit).
		for s := 0; (s+1)*32 <= len(bits)+1; s++ {
			block := bits[s*32 : s*32+31]
			if exact {
				found := false
				for sym := 0; sym < 16; sym++ {
					if d, _ := bitstream.HammingDistance(block, alphabet[sym]); d == 0 {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			} else {
				best := 32
				for sym := 0; sym < 16; sym++ {
					d, _ := bitstream.HammingDistance(block, alphabet[sym])
					if d < best {
						best = d
					}
				}
				if best > 10 {
					return false
				}
			}
		}
		return true
	}

	for _, tc := range []struct {
		name  string
		exact bool
	}{
		{name: "hamming", exact: false},
		{name: "exact-match", exact: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rnd := rand.New(rand.NewSource(7))
			ok := 0
			trials := 0
			for i := 0; i < b.N; i++ {
				sig, err := phy.ModulateChips(chips)
				if err != nil {
					b.Fatal(err)
				}
				if err := dsp.AddAWGN(sig, 5, rnd); err != nil {
					b.Fatal(err)
				}
				incs := dsp.Discriminate(sig)
				sums := dsp.IntegrateSymbols(incs, 0, benchSPS)
				bits := dsp.SliceBits(sums)
				n := len(msk)
				if len(bits) < n {
					n = len(bits)
				}
				if decode(bits[1:n], tc.exact) {
					ok++
				}
				trials++
			}
			b.ReportMetric(100*float64(ok)/float64(trials), "frame-ok%")
		})
	}
}
