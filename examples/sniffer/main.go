// Cross-protocol sniffer: the WazaBee reception primitive used
// standalone. A BLE chip, configured with the MSK access address and CRC
// checking disabled, passively logs 802.15.4 traffic streamed by the
// live victim network — the covert monitoring use case the paper's
// introduction warns about (exfiltration through a protocol "not
// supposed to be monitored").
//
// Every decoded period is published through a capture.Hub, so the
// console logger is just one subscriber among equals: -o tees the
// stream to a Wireshark-ready pcap file (link type 195) and -zep
// forwards each frame as a ZEP v2 datagram to a UDP collector.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/capture"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const (
	sps   = 8
	snrDB = 22
	// interval compresses the paper's two-second reporting period so
	// the demo finishes quickly.
	interval = 50 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pcapPath := flag.String("o", "", "tee decoded frames to this pcap file (Wireshark link type 195)")
	zepTarget := flag.String("zep", "", "stream decoded frames as ZEP v2 datagrams to this UDP host:port")
	periods := flag.Int("periods", 8, "sensor reporting periods to sniff")
	flag.Parse()

	network, err := wazabee.NewVictimNetwork(7, sps, snrDB)
	if err != nil {
		return err
	}
	live, err := zigbee.StartLive(network, interval, zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	defer live.Shutdown()

	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), sps)
	if err != nil {
		return err
	}
	fmt.Printf("sniffing Zigbee channel %d live with a diverted BLE chip (AA %#08x, CRC off)\n\n",
		zigbee.DefaultChannel, wazabee.AccessAddress())

	hub := capture.NewHub(nil)
	var consumers sync.WaitGroup
	captured := 0

	// Consumer 1: the console logger.
	logSub, err := hub.Subscribe("logger", 16)
	if err != nil {
		return err
	}
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		period := 0
		for {
			rec, ok := logSub.Recv()
			if !ok {
				return
			}
			logRecord(period, rec)
			period++
		}
	}()

	// Consumer 2 (optional): the pcap file.
	if *pcapPath != "" {
		pcap, err := capture.OpenRotatingPCAP(*pcapPath, 0, nil)
		if err != nil {
			return err
		}
		sub, err := hub.Subscribe("pcap", 64)
		if err != nil {
			return err
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for {
				rec, ok := sub.Recv()
				if !ok {
					break
				}
				if err := pcap.WriteRecord(rec); err != nil {
					fmt.Fprintln(os.Stderr, "sniffer: pcap:", err)
					break
				}
			}
			if err := pcap.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sniffer: pcap close:", err)
			}
		}()
	}

	// Consumer 3 (optional): the ZEP/UDP forwarder.
	if *zepTarget != "" {
		conn, err := net.Dial("udp", *zepTarget)
		if err != nil {
			return fmt.Errorf("zep target: %w", err)
		}
		sub, err := hub.Subscribe("zep", 64)
		if err != nil {
			return err
		}
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			defer conn.Close()
			var seq uint32
			for {
				rec, ok := sub.Recv()
				if !ok {
					return
				}
				if len(rec.PSDU) == 0 {
					continue
				}
				datagram, err := capture.EncodeZEP(rec, 0x5742, seq)
				if err != nil {
					continue
				}
				seq++
				if _, err := conn.Write(datagram); err != nil {
					fmt.Fprintln(os.Stderr, "sniffer: zep:", err)
					return
				}
			}
		}()
	}

	// Producer: decode each live period and publish it to every
	// subscriber. A closed capture stream ends the run gracefully — we
	// keep whatever was captured so far and surface the cause.
	var streamErr error
	for i := 0; i < *periods; i++ {
		c, ok := <-live.Captures()
		if !ok {
			streamErr = live.Err()
			break
		}
		dem, err := rx.Receive(c.IQ)
		if err != nil {
			dem = nil
		}
		rec := capture.NewLiveRecord(c.At, c.Channel, c.IQ, dem, snrDB)
		if dem != nil {
			captured++
		}
		hub.Publish(rec)
	}
	hub.Close()
	consumers.Wait()

	fmt.Printf("\ncaptured %d/%d sensor reports without owning any 802.15.4 hardware\n", captured, *periods)
	if streamErr != nil {
		fmt.Fprintf(os.Stderr, "sniffer: capture stream ended early: %v\n", streamErr)
	}
	if *pcapPath != "" {
		fmt.Printf("pcap capture written to %s (open with: wireshark %s)\n", *pcapPath, *pcapPath)
	}

	// The receiver's Obs field was never set, so it reported into the
	// process-wide default registry — dump what the pipeline observed.
	fmt.Println("\n=== telemetry snapshot (wazabee.Metrics, Prometheus text format) ===")
	fmt.Print(wazabee.Metrics().PrometheusText())
	return nil
}

func logRecord(period int, rec capture.Record) {
	if len(rec.PSDU) == 0 {
		fmt.Printf("period %d: no frame (RSSI %.1f dB)\n", period, rec.RSSIdBm)
		return
	}
	frame, err := ieee802154.ParseMACFrame(rec.PSDU)
	if err != nil {
		fmt.Printf("period %d: undecodable PSDU %x\n", period, rec.PSDU)
		return
	}
	value := "-"
	if v, err := zigbee.ParseSensorPayload(frame.Payload); err == nil {
		value = fmt.Sprintf("%d", v)
	}
	fmt.Printf("period %d: %v seq=%3d PAN=%#04x %#04x->%#04x value=%s LQI=%d FCS=%v\n",
		period, frame.Type, frame.Seq, frame.DestPAN, frame.SrcAddr, frame.DestAddr,
		value, rec.LQI, bitstream.CheckFCS(rec.PSDU))
}
