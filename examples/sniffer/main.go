// Cross-protocol sniffer: the WazaBee reception primitive used
// standalone. A BLE chip, configured with the MSK access address and CRC
// checking disabled, passively logs 802.15.4 traffic streamed by the
// live victim network — the covert monitoring use case the paper's
// introduction warns about (exfiltration through a protocol "not
// supposed to be monitored").
package main

import (
	"fmt"
	"log"
	"time"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const (
	sps     = 8
	snrDB   = 22
	periods = 8
	// interval compresses the paper's two-second reporting period so
	// the demo finishes quickly.
	interval = 50 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network, err := wazabee.NewVictimNetwork(7, sps, snrDB)
	if err != nil {
		return err
	}
	live, err := zigbee.StartLive(network, interval, zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	defer live.Shutdown()

	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), sps)
	if err != nil {
		return err
	}
	fmt.Printf("sniffing Zigbee channel %d live with a diverted BLE chip (AA %#08x, CRC off)\n\n",
		zigbee.DefaultChannel, wazabee.AccessAddress())

	captured := 0
	for i := 0; i < periods; i++ {
		capture, ok := <-live.Captures()
		if !ok {
			return fmt.Errorf("capture stream ended: %v", live.Err())
		}
		dem, err := rx.Receive(capture)
		if err != nil {
			fmt.Printf("period %d: no frame\n", i)
			continue
		}
		frame, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
		if err != nil {
			fmt.Printf("period %d: undecodable PSDU %x\n", i, dem.PPDU.PSDU)
			continue
		}
		captured++
		value := "-"
		if v, err := zigbee.ParseSensorPayload(frame.Payload); err == nil {
			value = fmt.Sprintf("%d", v)
		}
		fmt.Printf("period %d: %v seq=%3d PAN=%#04x %#04x->%#04x value=%s FCS=%v\n",
			i, frame.Type, frame.Seq, frame.DestPAN, frame.SrcAddr, frame.DestAddr,
			value, bitstream.CheckFCS(dem.PPDU.PSDU))
	}
	fmt.Printf("\ncaptured %d/%d sensor reports without owning any 802.15.4 hardware\n", captured, periods)

	// The receiver's Obs field was never set, so it reported into the
	// process-wide default registry — dump what the pipeline observed.
	fmt.Println("\n=== telemetry snapshot (wazabee.Metrics, Prometheus text format) ===")
	fmt.Print(wazabee.Metrics().PrometheusText())
	return nil
}
