// Hardened network: the section VII cryptographic counter-measure in
// action. The same scenario B attack runs twice — once against the open
// XBee network of the paper's setup (full takeover), once against the
// same network with CCM* link-layer security (reconnaissance still
// works, every injection fails).
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/ieee802154"
)

const sps = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newTracker(network *wazabee.VictimNetwork) (*wazabee.Tracker, error) {
	model := wazabee.NRF51822()
	tx, err := wazabee.NewTransmitter(model, sps)
	if err != nil {
		return nil, err
	}
	rx, err := wazabee.NewReceiver(model, sps)
	if err != nil {
		return nil, err
	}
	return wazabee.NewTracker(tx, rx, network)
}

func attackOnce(network *wazabee.VictimNetwork, label string) error {
	tracker, err := newTracker(network)
	if err != nil {
		return err
	}
	fmt.Printf("--- %s ---\n", label)

	info, err := tracker.ActiveScan(ieee802154.Channels())
	if err != nil {
		fmt.Println("scan:        failed:", err)
		return nil
	}
	fmt.Printf("scan:        found PAN %#04x on channel %d\n", info.PAN, info.Channel)

	sensor, err := tracker.Eavesdrop(info, 5)
	if err != nil {
		fmt.Println("eavesdrop:   failed:", err)
		return nil
	}
	fmt.Printf("eavesdrop:   sensor address %#04x\n", sensor)

	if err := tracker.InjectChannelChange(info, sensor, 25); err != nil {
		fmt.Println("AT inject:   REJECTED —", err)
	} else {
		fmt.Printf("AT inject:   sensor moved to channel %d (DoS)\n", network.Sensor.Channel)
	}

	if err := tracker.SpoofData(info, sensor, 6666); err != nil {
		fmt.Println("spoof:       REJECTED —", err)
	} else {
		last, _ := network.Coordinator.LastReading()
		fmt.Printf("spoof:       coordinator displays forged value %d\n", last.Value)
	}
	fmt.Println()
	return nil
}

func run() error {
	open, err := wazabee.NewVictimNetwork(100, sps, 25)
	if err != nil {
		return err
	}
	if err := attackOnce(open, "open network (paper's setup)"); err != nil {
		return err
	}

	secured, err := wazabee.NewVictimNetwork(101, sps, 25)
	if err != nil {
		return err
	}
	if err := secured.Secure([]byte("sixteen byte key"), ieee802154.SecEncMIC64); err != nil {
		return err
	}
	if err := attackOnce(secured, "secured network (CCM*, section VII counter-measure)"); err != nil {
		return err
	}

	fmt.Println("note: the attacker still modulates valid 802.15.4 frames either way —")
	fmt.Println("cryptography rejects them at the MAC layer, and jamming-style denial of")
	fmt.Println("service remains possible, exactly as the paper cautions.")
	return nil
}
