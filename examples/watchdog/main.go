// Watchdog: the section VII counter-measure in action. A radio monitor
// inspects channel 14 while the victim network operates normally, then
// while each attack of the paper runs. Legitimate traffic stays clean;
// the scenario A injection is caught by both its BLE framing and its
// GFSK modulation fingerprint; the scenario B spoofing is caught by the
// fingerprint alone.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/ids"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const sps = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func report(label string, v *ids.Verdict) {
	status := "clean"
	if v.Suspicious() {
		status = "ALERT"
	}
	fmt.Printf("%-34s frame=%v EVM=%.2f -> %s\n", label, v.FrameSeen, v.SoftEVM, status)
	for _, a := range v.Alerts {
		fmt.Printf("    [%v] %s\n", a.Kind, a.Detail)
	}
}

func run() error {
	monitor, err := ids.NewMonitor(sps)
	if err != nil {
		return err
	}
	network, err := wazabee.NewVictimNetwork(99, sps, 25)
	if err != nil {
		return err
	}

	// 1. Routine sensor traffic.
	capture, err := network.Capture(zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	v, err := monitor.Inspect(capture)
	if err != nil {
		return err
	}
	report("legitimate sensor reading", v)

	// 2. Scenario A: smartphone injection through extended advertising.
	phone, err := wazabee.NewSmartphone(sps)
	if err != nil {
		return err
	}
	frame := wazabee.NewDataFrame(9, zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(6666), false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return err
	}
	for event := uint16(0); ; event++ {
		if event > 1000 {
			return fmt.Errorf("CSA#2 never hit channel 8")
		}
		sig, bleChannel, err := phone.AdvertiseOnce(event, ppdu)
		if err != nil {
			return err
		}
		if bleChannel != 8 { // 2420 MHz = channel 14
			continue
		}
		padded, err := sig.Pad(150, 100)
		if err != nil {
			return err
		}
		v, err = monitor.Inspect(padded)
		if err != nil {
			return err
		}
		report("scenario A advertising injection", v)
		break
	}

	// 3. Scenario B: spoofed reading from a diverted BLE tracker.
	tx, err := wazabee.NewTransmitter(wazabee.NRF51822(), sps)
	if err != nil {
		return err
	}
	atkSig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		return err
	}
	padded, err := atkSig.Pad(150, 100)
	if err != nil {
		return err
	}
	v, err = monitor.Inspect(padded)
	if err != nil {
		return err
	}
	report("scenario B tracker spoofing", v)

	// 4. Band policy: the same legitimate frame on a channel where no
	// network is deployed.
	monitor.ChannelExpected = false
	capture2, err := network.Capture(zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	v, err = monitor.Inspect(capture2)
	if err != nil {
		return err
	}
	report("traffic on a forbidden channel", v)

	return nil
}
