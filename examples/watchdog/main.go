// Watchdog: the section VII counter-measure in action. A radio monitor
// inspects channel 14 while the victim network operates normally, then
// while each attack of the paper runs. Legitimate traffic stays clean;
// the scenario A injection is caught by both its BLE framing and its
// GFSK modulation fingerprint; the scenario B spoofing is caught by the
// fingerprint alone.
//
// The final section runs the monitor as a streaming consumer: one live
// sniffer producer publishes into a capture.Hub and two subscribers — a
// frame logger and the IDS — consume the same stream concurrently.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"wazabee"
	"wazabee/internal/capture"
	"wazabee/internal/ids"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const sps = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func report(label string, v *ids.Verdict) {
	status := "clean"
	if v.Suspicious() {
		status = "ALERT"
	}
	fmt.Printf("%-34s frame=%v EVM=%.2f -> %s\n", label, v.FrameSeen, v.SoftEVM, status)
	for _, a := range v.Alerts {
		fmt.Printf("    [%v] %s\n", a.Kind, a.Detail)
	}
}

func run() error {
	monitor, err := ids.NewMonitor(sps)
	if err != nil {
		return err
	}
	network, err := wazabee.NewVictimNetwork(99, sps, 25)
	if err != nil {
		return err
	}

	// 1. Routine sensor traffic.
	capture, err := network.Capture(zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	v, err := monitor.Inspect(capture)
	if err != nil {
		return err
	}
	report("legitimate sensor reading", v)

	// 2. Scenario A: smartphone injection through extended advertising.
	phone, err := wazabee.NewSmartphone(sps)
	if err != nil {
		return err
	}
	frame := wazabee.NewDataFrame(9, zigbee.DefaultPAN, zigbee.DefaultCoordinator,
		zigbee.DefaultSensor, zigbee.SensorPayload(6666), false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	ppdu, err := ieee802154.NewPPDU(psdu)
	if err != nil {
		return err
	}
	for event := uint16(0); ; event++ {
		if event > 1000 {
			return fmt.Errorf("CSA#2 never hit channel 8")
		}
		sig, bleChannel, err := phone.AdvertiseOnce(event, ppdu)
		if err != nil {
			return err
		}
		if bleChannel != 8 { // 2420 MHz = channel 14
			continue
		}
		padded, err := sig.Pad(150, 100)
		if err != nil {
			return err
		}
		v, err = monitor.Inspect(padded)
		if err != nil {
			return err
		}
		report("scenario A advertising injection", v)
		break
	}

	// 3. Scenario B: spoofed reading from a diverted BLE tracker.
	tx, err := wazabee.NewTransmitter(wazabee.NRF51822(), sps)
	if err != nil {
		return err
	}
	atkSig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		return err
	}
	padded, err := atkSig.Pad(150, 100)
	if err != nil {
		return err
	}
	v, err = monitor.Inspect(padded)
	if err != nil {
		return err
	}
	report("scenario B tracker spoofing", v)

	// 4. Band policy: the same legitimate frame on a channel where no
	// network is deployed.
	monitor.ChannelExpected = false
	capture2, err := network.Capture(zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	v, err = monitor.Inspect(capture2)
	if err != nil {
		return err
	}
	report("traffic on a forbidden channel", v)

	// 5. Streaming monitoring: the same IDS as a hub subscriber, next
	// to a frame logger, both fed by one live sniffer producer.
	monitor.ChannelExpected = true
	return streamingDemo(monitor)
}

// streamingDemo publishes a few live capture periods through a
// capture.Hub and lets two concurrent consumers — a frame logger and
// the IDS — process the identical stream, the deployment shape a real
// monitoring post would use (record once, analyse many ways).
func streamingDemo(monitor *ids.Monitor) error {
	fmt.Println("\n--- streaming: one sniffer producer, logger + IDS consumers ---")
	network, err := wazabee.NewVictimNetwork(123, sps, 25)
	if err != nil {
		return err
	}
	live, err := zigbee.StartLive(network, 20*time.Millisecond, zigbee.DefaultChannel)
	if err != nil {
		return err
	}
	defer live.Shutdown()
	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), sps)
	if err != nil {
		return err
	}

	hub := capture.NewHub(nil)
	var consumers sync.WaitGroup

	logSub, err := hub.Subscribe("logger", 8)
	if err != nil {
		return err
	}
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for {
			rec, ok := logSub.Recv()
			if !ok {
				return
			}
			if frame, err := ieee802154.ParseMACFrame(rec.PSDU); err == nil {
				fmt.Printf("logger: seq=%3d %#04x->%#04x LQI=%d\n",
					frame.Seq, frame.SrcAddr, frame.DestAddr, rec.LQI)
			} else {
				fmt.Printf("logger: period with no decodable frame (RSSI %.1f dB)\n", rec.RSSIdBm)
			}
		}
	}()

	idsSub, err := hub.Subscribe("ids", 8)
	if err != nil {
		return err
	}
	consumers.Add(1)
	go func() {
		defer consumers.Done()
		for {
			rec, ok := idsSub.Recv()
			if !ok {
				return
			}
			// The IDS works below the frame level, on the waveform the
			// record carries in memory.
			verdict, err := monitor.Inspect(rec.IQ)
			if err != nil {
				fmt.Println("ids: inspect:", err)
				continue
			}
			report(fmt.Sprintf("ids: live period (ch %d)", rec.Channel), verdict)
		}
	}()

	for i := 0; i < 3; i++ {
		c, ok := <-live.Captures()
		if !ok {
			fmt.Printf("watchdog: capture stream ended early: %v\n", live.Err())
			break
		}
		dem, err := rx.Receive(c.IQ)
		if err != nil {
			dem = nil
		}
		hub.Publish(capture.NewLiveRecord(c.At, c.Channel, c.IQ, dem, 25))
	}
	hub.Close()
	consumers.Wait()
	return nil
}
