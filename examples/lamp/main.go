// Smart-lamp takeover through the full Zigbee stack. The paper cites the
// "IoT goes nuclear" chain reaction [4], which rode ZCL On/Off traffic
// between smart lamps; here a diverted BLE chip speaks the complete
// MAC/NWK/APS/ZCL stack to toggle a lamp it was never supposed to reach.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
	"wazabee/internal/zigbee"
)

const (
	sps      = 8
	pan      = 0x1a62
	lampAddr = 0x4444
	attacker = 0x0b0b
	channel  = 16
)

// lamp is the victim device: a ZCL On/Off server.
type lamp struct {
	phy *ieee802154.PHY
	on  bool
}

// handle processes a received capture through the whole stack and
// applies On/Off commands addressed to the lamp.
func (l *lamp) handle(capture []complex128) error {
	dem, err := l.phy.Demodulate(capture)
	if err != nil {
		return fmt.Errorf("no frame: %w", err)
	}
	if !bitstream.CheckFCS(dem.PPDU.PSDU) {
		return fmt.Errorf("FCS failed")
	}
	mac, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return err
	}
	if mac.DestPAN != pan || mac.DestAddr != lampAddr {
		return fmt.Errorf("not for this lamp")
	}
	nwk, aps, err := zigbee.ParseZigbeeDataFrame(mac.Payload)
	if err != nil {
		return err
	}
	if aps.ClusterID != zigbee.ClusterOnOff {
		return fmt.Errorf("cluster %#x unsupported", aps.ClusterID)
	}
	zcl, err := zigbee.ParseZCLFrame(aps.Payload)
	if err != nil {
		return err
	}
	switch zcl.Command {
	case zigbee.OnOffCmdOn:
		l.on = true
	case zigbee.OnOffCmdOff:
		l.on = false
	case zigbee.OnOffCmdToggle:
		l.on = !l.on
	}
	fmt.Printf("lamp: NWK %#04x -> %#04x, ZCL cmd %#02x — lamp is now %s\n",
		nwk.SrcAddr, nwk.DestAddr, zcl.Command, state(l.on))
	return nil
}

func state(on bool) string {
	if on {
		return "ON"
	}
	return "off"
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	phy, err := wazabee.RZUSBStick().NewZigbeePHY(sps)
	if err != nil {
		return err
	}
	victim := &lamp{phy: phy}
	tx, err := wazabee.NewTransmitter(wazabee.NRF52832(), sps)
	if err != nil {
		return err
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 16)
	if err != nil {
		return err
	}
	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return err
	}

	fmt.Printf("lamp starts %s\n", state(victim.on))
	for i, cmd := range []uint8{zigbee.OnOffCmdOn, zigbee.OnOffCmdToggle, zigbee.OnOffCmdToggle, zigbee.OnOffCmdOn} {
		payload, err := zigbee.BuildOnOffCommand(uint8(i+1), uint8(i+1), uint8(i+1), lampAddr, attacker, cmd)
		if err != nil {
			return err
		}
		frame := wazabee.NewDataFrame(uint8(i+1), pan, lampAddr, attacker, payload, false)
		psdu, err := frame.Encode()
		if err != nil {
			return err
		}
		sig, err := tx.ModulatePSDU(psdu)
		if err != nil {
			return err
		}
		capture, err := medium.Deliver(sig, freq, freq, radio.Link{SNRdB: 16, LeadSamples: 200, LagSamples: 100})
		if err != nil {
			return err
		}
		if err := victim.handle(capture); err != nil {
			return err
		}
	}
	fmt.Println("\nfull-stack Zigbee (MAC/NWK/APS/ZCL) spoken by a BLE radio")
	return nil
}
