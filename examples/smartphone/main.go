// Scenario A (section VI-B of the paper): injecting 802.15.4 frames into
// a Zigbee network from an unrooted smartphone.
//
// The attacker controls nothing but the standard extended-advertising
// API: it cannot pick the secondary advertising channel (Channel
// Selection Algorithm #2 does), cannot disable whitening (so it
// pre-applies the dewhitening transform to its payload) and cannot
// receive at all (invalid-CRC frames die in the controller). Despite all
// that, forged sensor readings land on the victim coordinator's display.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/ble"
	"wazabee/internal/core"
	"wazabee/internal/ieee802154"
	"wazabee/internal/zigbee"
)

const (
	sps           = 8
	targetChannel = zigbee.DefaultChannel // 14 -> BLE channel 8 (2420 MHz)
	snrDB         = 25
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The victim: the paper's XBee domotic network (PAN 0x1234,
	// coordinator 0x0042 graphing sensor 0x0063's readings).
	network, err := wazabee.NewVictimNetwork(2021, sps, snrDB)
	if err != nil {
		return err
	}

	phone, err := wazabee.NewSmartphone(sps)
	if err != nil {
		return err
	}

	bleChannel, err := core.BLEChannelFor(targetChannel)
	if err != nil {
		return err
	}
	fmt.Printf("target: Zigbee channel %d == BLE data channel %d\n", targetChannel, bleChannel)

	// Forge a sensor reading. The payload below rides inside a
	// manufacturer-specific AD structure of an AUX_ADV_IND; the 16 PDU
	// bytes before it are the headers the paper calls padding.
	fmt.Printf("advertising-PDU overhead before attacker data: %d bytes\n", ble.AuxAdvIndOverhead)
	for i, value := range []uint16{2222, 3333, 4444} {
		frame := wazabee.NewDataFrame(uint8(40+i), zigbee.DefaultPAN, zigbee.DefaultCoordinator,
			zigbee.DefaultSensor, zigbee.SensorPayload(value), false)
		psdu, err := frame.Encode()
		if err != nil {
			return err
		}
		ppdu, err := ieee802154.NewPPDU(psdu)
		if err != nil {
			return err
		}
		events, err := phone.InjectFrame(network, targetChannel, ppdu, 1000)
		if err != nil {
			return err
		}
		fmt.Printf("forged reading %d injected after %d advertising events (CSA#2 lottery)\n", value, events)
	}

	fmt.Println("\ncoordinator display log:")
	for _, r := range network.Coordinator.Readings {
		fmt.Printf("  from %#04x seq %3d: value %d\n", r.Src, r.Seq, r.Value)
	}
	if last, ok := network.Coordinator.LastReading(); ok && last.Value == 4444 {
		fmt.Println("\nall forged data packets accepted by the legitimate coordinator")
	}
	return nil
}
