// Quickstart: the two WazaBee primitives in their simplest form.
//
// A diverted BLE chip (nRF52832 model) transmits an IEEE 802.15.4 frame
// that a legitimate Zigbee radio decodes, then a legitimate Zigbee
// transmission is captured by a diverted BLE receiver — both across the
// simulated air with realistic noise and crystal offsets.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
)

const (
	sps     = 8  // baseband samples per 2 Mbit/s symbol
	channel = 14 // Zigbee channel of the victim network (2420 MHz)
	snrDB   = 15
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The simulated 2.4 GHz medium both radios share.
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 42)
	if err != nil {
		return err
	}
	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return err
	}
	link := radio.Link{SNRdB: snrDB, CFOHz: 40e3, LeadSamples: 300, LagSamples: 150}

	// A legitimate Zigbee endpoint (RZUSBStick-class radio).
	zigbeePHY, err := wazabee.RZUSBStick().NewZigbeePHY(sps)
	if err != nil {
		return err
	}

	// ---- Direction 1: BLE chip transmits, Zigbee radio receives. ----
	tx, err := wazabee.NewTransmitter(wazabee.NRF52832(), sps)
	if err != nil {
		return err
	}
	frame := wazabee.NewDataFrame(7, 0x1234, 0x0042, 0x0063, []byte("hello zigbee"), false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		return err
	}
	capture, err := medium.Deliver(sig, freq, freq, link)
	if err != nil {
		return err
	}
	dem, err := zigbeePHY.Demodulate(capture)
	if err != nil {
		return fmt.Errorf("zigbee RX: %w", err)
	}
	rx1, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return err
	}
	fmt.Printf("BLE chip -> Zigbee radio: %q (FCS ok: %v)\n",
		rx1.Payload, bitstream.CheckFCS(dem.PPDU.PSDU))

	// ---- Direction 2: Zigbee radio transmits, BLE chip receives. ----
	rx, err := wazabee.NewReceiver(wazabee.CC1352R1(), sps)
	if err != nil {
		return err
	}
	reply := wazabee.NewDataFrame(8, 0x1234, 0x0063, 0x0042, []byte("hello ble"), false)
	replyPSDU, err := reply.Encode()
	if err != nil {
		return err
	}
	replyPPDU, err := wazabee.NewFrame(replyPSDU)
	if err != nil {
		return err
	}
	sig2, err := zigbeePHY.Modulate(replyPPDU)
	if err != nil {
		return err
	}
	capture2, err := medium.Deliver(sig2, freq, freq, link)
	if err != nil {
		return err
	}
	dem2, err := rx.Receive(capture2)
	if err != nil {
		return fmt.Errorf("WazaBee RX: %w", err)
	}
	rx2, err := ieee802154.ParseMACFrame(dem2.PPDU.PSDU)
	if err != nil {
		return err
	}
	fmt.Printf("Zigbee radio -> BLE chip: %q (worst chip distance %d)\n",
		rx2.Payload, dem2.WorstChipDistance)

	// The table the whole trick rests on.
	table, err := wazabee.CorrespondenceTable()
	if err != nil {
		return err
	}
	fmt.Printf("\nsymbol 0 PN : %s\nsymbol 0 MSK: %s\n", table[0].PN, table[0].MSK)
	fmt.Printf("BLE access address for 802.15.4 detection: %#08x\n", wazabee.AccessAddress())
	return nil
}
