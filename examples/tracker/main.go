// Scenario B (section VI-C of the paper): a complex Zigbee attack from a
// compromised BLE tracker (Gablys Lite, nRF51822).
//
// The nRF51822 lacks LE 2M, so the attack runs over Nordic's Enhanced
// ShockBurst at 2 Mbit/s — noisier, but sufficient. Four steps, as in
// Figure 5: active scan, eavesdropping, remote AT command injection (a
// denial of service pushing the sensor off-channel) and fake data
// injection mimicking the silenced sensor.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/ieee802154"
)

const (
	sps        = 8
	snrDB      = 24
	dosChannel = 25 // where the sensor gets exiled
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network, err := wazabee.NewVictimNetwork(51822, sps, snrDB)
	if err != nil {
		return err
	}

	model := wazabee.NRF51822()
	fmt.Printf("attacker radio: %s (%v — no LE 2M, ESB fallback)\n", model.Name, model.Mode)
	tx, err := wazabee.NewTransmitter(model, sps)
	if err != nil {
		return err
	}
	rx, err := wazabee.NewReceiver(model, sps)
	if err != nil {
		return err
	}
	tracker, err := wazabee.NewTracker(tx, rx, network)
	if err != nil {
		return err
	}

	// Step 1: active scanning.
	info, err := tracker.ActiveScan(ieee802154.Channels())
	if err != nil {
		return err
	}
	fmt.Printf("step 1 — active scan: network found on channel %d, PAN %#04x, coordinator %#04x\n",
		info.Channel, info.PAN, info.Coordinator)

	// Step 2: eavesdropping.
	sensor, err := tracker.Eavesdrop(info, 10)
	if err != nil {
		return err
	}
	fmt.Printf("step 2 — eavesdropping: sensor address %#04x\n", sensor)

	// Step 3: remote AT command injection (denial of service).
	if err := tracker.InjectChannelChange(info, sensor, dosChannel); err != nil {
		return err
	}
	fmt.Printf("step 3 — AT command injected: sensor now on channel %d (network is on %d)\n",
		network.Sensor.Channel, info.Channel)

	// The silenced sensor keeps reporting — on the wrong channel.
	before := len(network.Coordinator.Readings)
	for i := 0; i < 3; i++ {
		if _, err := network.Step(info.Channel); err != nil {
			return err
		}
	}
	fmt.Printf("         sensor sent 3 readings, coordinator received %d of them\n",
		len(network.Coordinator.Readings)-before)

	// Step 4: fake data injection.
	for _, value := range []uint16{8080, 8081, 8082} {
		if err := tracker.SpoofData(info, sensor, value); err != nil {
			return err
		}
	}
	fmt.Println("step 4 — spoofed readings acknowledged by the coordinator")

	fmt.Println("\ncoordinator display log (tail):")
	readings := network.Coordinator.Readings
	start := 0
	if len(readings) > 6 {
		start = len(readings) - 6
	}
	for _, r := range readings[start:] {
		fmt.Printf("  from %#04x seq %3d: value %d\n", r.Src, r.Seq, r.Value)
	}
	return nil
}
