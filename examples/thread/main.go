// Thread-style 6LoWPAN injection: the paper's generality claim —
// "our approach is compliant with all 802.15.4 frames (Zigbee, 6LoWPan
// ...)" — demonstrated beyond Zigbee. A diverted BLE chip builds a
// compressed 6LoWPAN UDP datagram (CoAP-style payload) and injects it
// into a Thread-style mesh; the victim node decompresses a perfectly
// valid IPv6/UDP packet.
package main

import (
	"fmt"
	"log"

	"wazabee"
	"wazabee/internal/bitstream"
	"wazabee/internal/ieee802154"
	"wazabee/internal/radio"
	"wazabee/internal/sixlowpan"
)

const (
	pan      = 0xface
	attacker = 0x0b0b
	victim   = 0x0001
	channel  = 20
	sps      = 8
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build the IPv6/UDP datagram and compress it with 6LoWPAN IPHC.
	ip := &sixlowpan.IPv6Header{
		NextHeader: sixlowpan.ProtoUDP,
		HopLimit:   64,
		Src:        sixlowpan.LinkLocalFromShort(pan, attacker),
		Dst:        sixlowpan.LinkLocalFromShort(pan, victim),
	}
	udp := &sixlowpan.UDPHeader{SrcPort: 5683, DstPort: 5683} // CoAP
	payload := []byte("PUT /light?on=1")
	datagram, err := sixlowpan.Compress(pan, attacker, victim, ip, udp, payload)
	if err != nil {
		return err
	}
	fmt.Printf("IPv6(40B) + UDP(8B) + %dB payload compressed to %d bytes of 6LoWPAN\n",
		len(payload), len(datagram))

	// Inject it with the WazaBee transmission primitive.
	frame := wazabee.NewDataFrame(1, pan, victim, attacker, datagram, false)
	psdu, err := frame.Encode()
	if err != nil {
		return err
	}
	tx, err := wazabee.NewTransmitter(wazabee.NRF52832(), sps)
	if err != nil {
		return err
	}
	sig, err := tx.ModulatePSDU(psdu)
	if err != nil {
		return err
	}
	medium, err := radio.NewMedium(float64(sps)*ieee802154.ChipRate, 7)
	if err != nil {
		return err
	}
	freq, err := ieee802154.ChannelFrequencyMHz(channel)
	if err != nil {
		return err
	}
	capture, err := medium.Deliver(sig, freq, freq, radio.Link{SNRdB: 15, LeadSamples: 200, LagSamples: 100})
	if err != nil {
		return err
	}

	// The Thread-style node receives and reassembles the packet.
	phy, err := wazabee.RZUSBStick().NewZigbeePHY(sps)
	if err != nil {
		return err
	}
	dem, err := phy.Demodulate(capture)
	if err != nil {
		return err
	}
	rx, err := ieee802154.ParseMACFrame(dem.PPDU.PSDU)
	if err != nil {
		return err
	}
	gotIP, gotUDP, gotPayload, err := sixlowpan.Decompress(pan, rx.SrcAddr, rx.DestAddr, rx.Payload)
	if err != nil {
		return err
	}

	fmt.Printf("victim received (FCS ok: %v):\n", bitstream.CheckFCS(dem.PPDU.PSDU))
	fmt.Printf("  IPv6 %x -> %x hop=%d\n", gotIP.Src[14:], gotIP.Dst[14:], gotIP.HopLimit)
	fmt.Printf("  UDP %d -> %d\n", gotUDP.SrcPort, gotUDP.DstPort)
	fmt.Printf("  payload: %q\n", gotPayload)
	fmt.Println("\na BLE chip just spoke Thread — no 802.15.4 hardware involved")
	return nil
}
